open Xr_xml

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ---- Dewey ------------------------------------------------------------ *)

let test_dewey_basics () =
  check Alcotest.int "root depth" 0 (Dewey.depth Dewey.root);
  let d = Dewey.child (Dewey.child Dewey.root 1) 2 in
  check Alcotest.int "depth" 2 (Dewey.depth d);
  check Alcotest.string "to_string" "0.1.2" (Dewey.to_string d);
  check Alcotest.string "root to_string" "0" (Dewey.to_string Dewey.root);
  check Alcotest.bool "parse roundtrip" true (Dewey.equal d (Dewey.of_string "0.1.2"));
  check Alcotest.bool "root parse" true (Dewey.equal Dewey.root (Dewey.of_string "0"));
  (match Dewey.parent d with
  | Some p -> check Alcotest.string "parent" "0.1" (Dewey.to_string p)
  | None -> Alcotest.fail "expected parent");
  check Alcotest.bool "root has no parent" true (Dewey.parent Dewey.root = None)

let test_dewey_order () =
  let sorted = [ "0"; "0.0"; "0.0.0"; "0.0.1"; "0.1"; "0.1.0"; "0.2"; "0.10" ] in
  let labels = List.map Dewey.of_string sorted in
  let resorted = List.sort Dewey.compare (List.rev labels) in
  check
    (Alcotest.list Alcotest.string)
    "document order" sorted
    (List.map Dewey.to_string resorted)

let test_dewey_prefix_lca () =
  let a = Dewey.of_string "0.1.2.3" and b = Dewey.of_string "0.1.5" in
  check Alcotest.string "lca" "0.1" (Dewey.to_string (Dewey.lca a b));
  check Alcotest.bool "prefix yes" true (Dewey.is_prefix (Dewey.of_string "0.1") a);
  check Alcotest.bool "prefix self" true (Dewey.is_prefix a a);
  check Alcotest.bool "prefix no" false (Dewey.is_prefix a b);
  check Alcotest.bool "root prefixes all" true (Dewey.is_prefix Dewey.root b);
  (* components exclude the notational leading "0" for the root *)
  check Alcotest.int "common prefix len" 1 (Dewey.common_prefix_len a b);
  check Alcotest.string "prefix extraction" "0.1.2" (Dewey.to_string (Dewey.prefix a 2))

let test_dewey_bad_parse () =
  Alcotest.check_raises "bad start" (Invalid_argument "Dewey.of_string: must start with 0: 1.2")
    (fun () -> ignore (Dewey.of_string "1.2"));
  (try
     ignore (Dewey.of_string "0.x");
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ())

let dewey_gen =
  QCheck.Gen.(list_size (int_bound 6) (int_bound 8) >|= Array.of_list)

let arb_dewey = QCheck.make ~print:(fun d -> Dewey.to_string d) dewey_gen

let prop_dewey_roundtrip =
  QCheck.Test.make ~name:"dewey to_string/of_string roundtrip" ~count:500 arb_dewey (fun d ->
      Dewey.equal d (Dewey.of_string (Dewey.to_string d)))

let prop_dewey_total_order =
  QCheck.Test.make ~name:"dewey compare antisymmetric + lca commutes" ~count:500
    (QCheck.pair arb_dewey arb_dewey) (fun (a, b) ->
      let c1 = Dewey.compare a b and c2 = Dewey.compare b a in
      (c1 = -c2 || (c1 = 0 && c2 = 0)) && Dewey.equal (Dewey.lca a b) (Dewey.lca b a))

let prop_dewey_lca_is_prefix =
  QCheck.Test.make ~name:"lca is a prefix of both" ~count:500 (QCheck.pair arb_dewey arb_dewey)
    (fun (a, b) ->
      let l = Dewey.lca a b in
      Dewey.is_prefix l a && Dewey.is_prefix l b)

let prop_dewey_prefix_order =
  QCheck.Test.make ~name:"a prefix never sorts after its extension" ~count:500
    (QCheck.pair arb_dewey (QCheck.make QCheck.Gen.(int_bound 8))) (fun (a, i) ->
      Dewey.compare a (Dewey.child a i) < 0)

(* ---- Interner ---------------------------------------------------------- *)

let test_interner () =
  let t = Interner.create () in
  let a = Interner.intern t "alpha" in
  let b = Interner.intern t "beta" in
  check Alcotest.int "dense ids" 0 a;
  check Alcotest.int "dense ids 2" 1 b;
  check Alcotest.int "idempotent" a (Interner.intern t "alpha");
  check Alcotest.string "name" "beta" (Interner.name t b);
  check Alcotest.int "size" 2 (Interner.size t);
  check Alcotest.bool "find missing" true (Interner.find t "gamma" = None);
  (* force growth *)
  for i = 0 to 999 do
    ignore (Interner.intern t (string_of_int i))
  done;
  check Alcotest.int "size after growth" 1002 (Interner.size t);
  check Alcotest.string "old entry survives growth" "alpha" (Interner.name t a)

(* ---- Token ------------------------------------------------------------ *)

let test_token () =
  check
    (Alcotest.list Alcotest.string)
    "tokenize" [ "xml"; "keyword"; "2003" ]
    (Token.tokenize "  XML keyword, (2003)!");
  check (Alcotest.list Alcotest.string) "empty" [] (Token.tokenize " ,;- ");
  check Alcotest.string "normalize" "online" (Token.normalize "On-Line");
  check Alcotest.bool "is_keyword yes" true (Token.is_keyword "xml2");
  check Alcotest.bool "is_keyword no (case)" false (Token.is_keyword "Xml");
  check Alcotest.bool "is_keyword no (empty)" false (Token.is_keyword "")

(* ---- Tree ------------------------------------------------------------- *)

let sample_tree () =
  Tree.elem "bib"
    [
      Tree.Elem (Tree.leaf "title" "XML data management");
      Tree.Text "stray";
      Tree.Elem (Tree.elem ~attrs:[ ("id", "7") ] "year" [ Tree.Text "2003" ]);
    ]

let test_tree () =
  let t = sample_tree () in
  check Alcotest.int "size" 3 (Tree.size t);
  check Alcotest.int "depth" 2 (Tree.depth t);
  check Alcotest.int "element children" 2 (List.length (Tree.element_children t));
  check Alcotest.string "text includes direct only" "stray" (Tree.text t);
  let year = List.nth (Tree.element_children t) 1 in
  check Alcotest.string "attr values count as text" "2003 7" (Tree.text year);
  check Alcotest.int "find_all" 1 (List.length (Tree.find_all t (fun e -> e.Tree.tag = "year")))

(* ---- Lexer / Parser / Printer ------------------------------------------ *)

let test_parse_simple () =
  let t = Parser.parse_string "<a><b x='1'>hi</b><c/></a>" in
  check Alcotest.string "root" "a" t.Tree.tag;
  check Alcotest.int "children" 2 (List.length (Tree.element_children t));
  let b = List.hd (Tree.element_children t) in
  check Alcotest.string "text" "hi 1" (Tree.text b)

let test_parse_entities_cdata_comments () =
  let t =
    Parser.parse_string
      "<?xml version=\"1.0\"?><!DOCTYPE a><a><!-- note --><b>x &amp; y &#65;</b><c><![CDATA[<raw&>]]></c></a>"
  in
  let b = List.nth (Tree.element_children t) 0 in
  let c = List.nth (Tree.element_children t) 1 in
  check Alcotest.string "entities" "x & y A" (Tree.text b);
  check Alcotest.string "cdata" "<raw&>" (Tree.text c)

let test_parse_errors () =
  let expect_error s =
    try
      ignore (Parser.parse_string s);
      Alcotest.failf "expected parse error on %S" s
    with Parser.Error _ -> ()
  in
  expect_error "";
  expect_error "<a>";
  expect_error "<a></b>";
  expect_error "<a></a><b></b>";
  expect_error "<a attr></a>";
  expect_error "<a>&unknown;</a>";
  expect_error "oops<a/>"

let test_print_parse_roundtrip () =
  let t = sample_tree () in
  let t' = Parser.parse_string (Printer.to_string t) in
  (* whitespace-only text may be introduced/normalized; compare structure
     and text content *)
  check Alcotest.int "size" (Tree.size t) (Tree.size t');
  check Alcotest.string "root" t.Tree.tag t'.Tree.tag

let test_escape () =
  check Alcotest.string "escape" "&amp;&lt;&gt;&quot;&apos;" (Printer.escape "&<>\"'");
  let t = Tree.leaf "t" "a<b&c" in
  let t' = Parser.parse_string (Printer.to_string t) in
  check Alcotest.string "escaped text survives" "a<b&c" (Tree.text t')

(* random tree generator for the roundtrip property *)
let gen_tree =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c"; "item"; "node" ] in
  let text = oneofl [ "x"; "hello world"; "a & b < c"; "2003"; "" ] in
  fix
    (fun self depth ->
      let leaf = map2 (fun tg tx -> Tree.leaf tg tx) tag text in
      if depth = 0 then leaf
      else
        frequency
          [
            (1, leaf);
            ( 2,
              map2
                (fun tg children -> Tree.elem tg (List.map (fun c -> Tree.Elem c) children))
                tag
                (list_size (int_bound 3) (self (depth - 1))) );
          ])
    3

let arb_tree = QCheck.make ~print:(fun t -> Printer.to_string t) gen_tree

let non_blank s = String.exists (fun c -> not (List.mem c [ ' '; '\t'; '\n'; '\r' ])) s

(* The parser drops whitespace-only character data; compare trees modulo
   blank text nodes and text normalization. *)
let rec tree_equivalent (a : Tree.t) (b : Tree.t) =
  String.equal a.tag b.tag
  && (let ta = String.concat " " (Token.tokenize (Tree.text a)) in
      let tb = String.concat " " (Token.tokenize (Tree.text b)) in
      String.equal ta tb)
  && List.equal tree_equivalent (Tree.element_children a) (Tree.element_children b)

let prop_print_parse =
  QCheck.Test.make ~name:"printer/parser roundtrip (structure + tokens)" ~count:200 arb_tree
    (fun t ->
      ignore non_blank;
      tree_equivalent t (Parser.parse_string (Printer.to_string t))
      && tree_equivalent t (Parser.parse_string (Printer.to_string ~indent:false t)))

(* the parser never raises anything but Parser.Error on arbitrary input *)
let prop_parser_total =
  QCheck.Test.make ~name:"parser: Ok or Parser.Error, never a crash" ~count:1000
    (QCheck.make
       ~print:(fun s -> String.escaped s)
       QCheck.Gen.(
         oneof
           [
             string_size ~gen:printable (int_bound 60);
             (* markup-heavy soup *)
             (let frag = oneofl [ "<a>"; "</a>"; "<b x='1'"; "&amp;"; "&#6"; "<!--"; "-->"; "]]>";
                                  "<![CDATA["; "<?pi"; "?>"; "text"; "<"; ">"; "\""; "'" ] in
              map (String.concat "") (list_size (int_bound 12) frag));
           ]))
    (fun s ->
      match Parser.parse_string s with
      | (_ : Tree.t) -> true
      | exception Parser.Error _ -> true)

(* ---- Path ------------------------------------------------------------- *)

let test_path () =
  let tags = Interner.create () in
  let paths = Path.create () in
  let bib = Interner.intern tags "bib" in
  let author = Interner.intern tags "author" in
  let name = Interner.intern tags "name" in
  let p_bib = Path.root paths ~tag:bib in
  let p_author = Path.child paths ~parent:p_bib ~tag:author in
  let p_name = Path.child paths ~parent:p_author ~tag:name in
  check Alcotest.int "dedup" p_author (Path.child paths ~parent:p_bib ~tag:author);
  check Alcotest.int "depth root" 1 (Path.depth paths p_bib);
  check Alcotest.int "depth nested" 3 (Path.depth paths p_name);
  check Alcotest.bool "is_prefix" true (Path.is_prefix paths ~ancestor:p_bib ~descendant:p_name);
  check Alcotest.bool "is_prefix self" true
    (Path.is_prefix paths ~ancestor:p_name ~descendant:p_name);
  check Alcotest.bool "not prefix" false
    (Path.is_prefix paths ~ancestor:p_name ~descendant:p_author);
  check Alcotest.string "to_string" "/bib/author/name" (Path.to_string paths tags p_name);
  check Alcotest.int "ancestors" 3 (List.length (Path.ancestors paths p_name));
  check Alcotest.bool "ancestor_at" true (Path.ancestor_at paths p_name ~depth:2 = Some p_author);
  check Alcotest.bool "ancestor_at too deep" true (Path.ancestor_at paths p_bib ~depth:2 = None);
  check Alcotest.int "size" 3 (Path.size paths)

(* ---- Doc -------------------------------------------------------------- *)

let test_doc () =
  let doc = Doc.of_string "<bib><author><name>John</name><name>Mary</name></author></bib>" in
  check Alcotest.int "node count" 4 (Doc.node_count doc);
  (* document order *)
  let labels = Array.to_list (Array.map (fun n -> Dewey.to_string n.Doc.dewey) doc.Doc.nodes) in
  check (Alcotest.list Alcotest.string) "doc order" [ "0"; "0.0"; "0.0.0"; "0.0.1" ] labels;
  (match Doc.find doc (Dewey.of_string "0.0.1") with
  | Some n -> check Alcotest.string "find tag" "name" (Doc.tag_name doc n)
  | None -> Alcotest.fail "find failed");
  check Alcotest.bool "find missing" true (Doc.find doc (Dewey.of_string "0.5") = None);
  check Alcotest.bool "keyword john" true (Doc.keyword_id doc "JOHN" <> None);
  check Alcotest.bool "keyword missing" true (Doc.keyword_id doc "xyzzy" = None);
  (match Doc.subtree doc (Dewey.of_string "0.0") with
  | Some t -> check Alcotest.int "subtree size" 3 (Tree.size t)
  | None -> Alcotest.fail "subtree failed");
  check Alcotest.string "label" "name:0.0.0" (Doc.label doc (Dewey.of_string "0.0.0"));
  (* tag tokens are keywords *)
  check Alcotest.bool "tag token indexed" true (Doc.keyword_id doc "author" <> None)

let test_doc_direct_keywords () =
  let doc = Doc.of_string "<a><b>x x y</b></a>" in
  match Doc.find doc (Dewey.of_string "0.0") with
  | None -> Alcotest.fail "node 0.0 missing"
  | Some n ->
    let count k =
      match Doc.keyword_id doc k with
      | None -> 0
      | Some id -> ( try List.assoc id n.Doc.keywords with Not_found -> 0)
    in
    check Alcotest.int "multiplicity" 2 (count "x");
    check Alcotest.int "single" 1 (count "y");
    check Alcotest.int "tag token" 1 (count "b")

(* ---- Xpath ------------------------------------------------------------ *)

let test_xpath_eval () =
  let doc = Xr_data.Figure1.doc () in
  let eval s = List.map Dewey.to_string (Xpath.eval doc (Xpath.parse_exn s)) in
  check (Alcotest.list Alcotest.string) "child path" [ "0.0.0"; "0.1.0" ] (eval "/bib/author/name");
  check Alcotest.int "descendant" 6 (List.length (eval "//title"));
  check Alcotest.int "mixed" 6 (List.length (eval "/bib//title"));
  check (Alcotest.list Alcotest.string) "root" [ "0" ] (eval "/bib");
  check Alcotest.int "wildcard" 2 (List.length (eval "/bib/*/publications"));
  check
    (Alcotest.list Alcotest.string)
    "filter" [ "0.1.1.0"; "0.1.1.1" ]
    (eval "//inproceedings[xml]");
  check (Alcotest.list Alcotest.string) "no match" [] (eval "/bib/zzz");
  check (Alcotest.list Alcotest.string) "filter no match" [] (eval "//title[zzzz]");
  (* matches *)
  let p = Xpath.parse_exn "//hobby" in
  check Alcotest.bool "matches yes" true (Xpath.matches doc p (Dewey.of_string "0.1.2"));
  check Alcotest.bool "matches no" false (Xpath.matches doc p (Dewey.of_string "0.1.0"));
  check Alcotest.bool "matches unknown" false (Xpath.matches doc p (Dewey.of_string "0.7"))

let test_xpath_parse_errors () =
  let bad s =
    match Xpath.parse s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  List.iter bad [ ""; "bib"; "/"; "//"; "/a["; "/a[]"; "/a[x]b"; "/a b" ];
  (* roundtrip of to_string *)
  List.iter
    (fun s ->
      check Alcotest.string ("roundtrip " ^ s) s (Xpath.to_string (Xpath.parse_exn s)))
    [ "/bib/author"; "//title"; "/a//b/*[xml]" ]

(* every node eval returns satisfies matches, and vice versa *)
let prop_xpath_eval_matches_agree =
  let paths =
    [ "/a"; "//b"; "/a/b"; "/a//c"; "//*"; "/a/*"; "//b[x]"; "/a//b[y]"; "//c[w]" ]
  in
  QCheck.Test.make ~name:"xpath eval = filter by matches" ~count:200
    (QCheck.make
       ~print:(fun (t, p) -> Printer.to_string t ^ "\npath: " ^ p)
       QCheck.Gen.(pair gen_tree (oneofl paths)))
    (fun (tree, path) ->
      let doc = Doc.of_tree tree in
      let p = Xpath.parse_exn path in
      let evaled = Xpath.eval doc p in
      let by_matches =
        Array.to_list doc.Doc.nodes
        |> List.filter_map (fun (n : Doc.node) ->
               if Xpath.matches doc p n.Doc.dewey then Some n.Doc.dewey else None)
      in
      List.equal Dewey.equal evaled by_matches)

let () =
  Alcotest.run "xr_xml"
    [
      ( "dewey",
        [
          Alcotest.test_case "basics" `Quick test_dewey_basics;
          Alcotest.test_case "document order" `Quick test_dewey_order;
          Alcotest.test_case "prefix & lca" `Quick test_dewey_prefix_lca;
          Alcotest.test_case "bad parse" `Quick test_dewey_bad_parse;
          qcheck prop_dewey_roundtrip;
          qcheck prop_dewey_total_order;
          qcheck prop_dewey_lca_is_prefix;
          qcheck prop_dewey_prefix_order;
        ] );
      ("interner", [ Alcotest.test_case "intern/find/name" `Quick test_interner ]);
      ("token", [ Alcotest.test_case "tokenize/normalize" `Quick test_token ]);
      ("tree", [ Alcotest.test_case "accessors" `Quick test_tree ]);
      ( "parser",
        [
          Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "entities/cdata/comments" `Quick test_parse_entities_cdata_comments;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_print_parse_roundtrip;
          Alcotest.test_case "escaping" `Quick test_escape;
          qcheck prop_print_parse;
          qcheck prop_parser_total;
        ] );
      ("path", [ Alcotest.test_case "prefix paths" `Quick test_path ]);
      ( "xpath",
        [
          Alcotest.test_case "eval" `Quick test_xpath_eval;
          Alcotest.test_case "parse errors" `Quick test_xpath_parse_errors;
          qcheck prop_xpath_eval_matches_agree;
        ] );
      ( "doc",
        [
          Alcotest.test_case "compile" `Quick test_doc;
          Alcotest.test_case "direct keywords" `Quick test_doc_direct_keywords;
        ] );
    ]
