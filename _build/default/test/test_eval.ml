module Cg = Xr_eval.Cg
module Judge = Xr_eval.Judge
module Querylog = Xr_eval.Querylog
module Index = Xr_index.Index
module Engine = Xr_refine.Engine
module Result = Xr_refine.Result

let check = Alcotest.check

let dblp =
  lazy
    (Index.build
       (Xr_data.Dblp.doc ~config:{ Xr_data.Dblp.default_config with publications = 250 } ()))

(* ---- CG ----------------------------------------------------------------- *)

let test_cg_vector () =
  let cg = Cg.cumulate [| 3.; 0.; 2.; 1. |] in
  check (Alcotest.array (Alcotest.float 1e-9)) "cumulation" [| 3.; 3.; 5.; 6. |] cg;
  check (Alcotest.float 1e-9) "at 1" 3. (Cg.at [| 3.; 0.; 2.; 1. |] 1);
  check (Alcotest.float 1e-9) "at 4" 6. (Cg.at [| 3.; 0.; 2.; 1. |] 4);
  check (Alcotest.float 1e-9) "beyond end repeats" 6. (Cg.at [| 3.; 0.; 2.; 1. |] 10);
  check (Alcotest.float 1e-9) "empty" 0. (Cg.at [||] 3);
  (try
     ignore (Cg.at [| 1. |] 0);
     Alcotest.fail "0-based accepted"
   with Invalid_argument _ -> ());
  (* dcg discounts later positions *)
  let d = Cg.dcg [| 2.; 2.; 2. |] in
  (* log2 discount starts to bite at position 3 *)
  check Alcotest.bool "dcg discount" true (d.(2) -. d.(1) < 2.)

let test_ndcg () =
  (* perfect ordering scores 1 everywhere *)
  let g = [| 3.; 2.; 1. |] in
  Array.iter
    (fun v -> check (Alcotest.float 1e-9) "perfect" 1. v)
    (Cg.ndcg g ~ideal:g);
  (* a worse ordering scores below 1 at the top *)
  let worse = Cg.ndcg [| 1.; 2.; 3. |] ~ideal:g in
  check Alcotest.bool "inversion penalized" true (worse.(0) < 1.);
  check Alcotest.bool "bounded by 1" true (Array.for_all (fun v -> v <= 1. +. 1e-9) worse);
  (* all-zero ideal yields zeros *)
  Array.iter
    (fun v -> check (Alcotest.float 1e-9) "zero ideal" 0. v)
    (Cg.ndcg [| 1. |] ~ideal:[| 0. |])

let test_cg_mean () =
  let m = Cg.mean [ [| 1.; 2. |]; [| 3. |] ] in
  (* second vector pads with its last value *)
  check (Alcotest.array (Alcotest.float 1e-9)) "mean with padding" [| 2.; 2.5 |] m;
  check (Alcotest.array (Alcotest.float 1e-9)) "empty input" [||] (Cg.mean [])

(* ---- judges ---------------------------------------------------------------- *)

let test_judge_grades_truth_highest () =
  let index = Lazy.force dblp in
  let rng = Xr_data.Rng.create 17 in
  match Querylog.sample_intent rng index ~len:3 with
  | None -> Alcotest.fail "no intent sampled"
  | Some intent ->
    let truth = Engine.search index intent in
    let perfect = Judge.raw_score index ~intent ~rq:intent ~slcas:truth in
    let junk = Judge.raw_score index ~intent ~rq:[ "unrelated" ] ~slcas:[] in
    check Alcotest.bool "perfect > junk" true (perfect > junk);
    check Alcotest.bool "perfect is high" true (perfect > 0.9);
    check (Alcotest.float 1e-9) "junk is zero" 0. junk;
    (* judgments are deterministic per seed *)
    let j1 = Judge.judge ~seed:1 index ~intent ~rq:intent ~slcas:truth in
    let j2 = Judge.judge ~seed:1 index ~intent ~rq:intent ~slcas:truth in
    check Alcotest.bool "deterministic" true (j1 = j2);
    check Alcotest.bool "perfect graded highly" true (Judge.gain j1 >= 2.)

let test_judge_gains () =
  check (Alcotest.float 0.) "irrelevant" 0. (Judge.gain Judge.Irrelevant);
  check (Alcotest.float 0.) "marginal" 1. (Judge.gain Judge.Marginal);
  check (Alcotest.float 0.) "fair" 2. (Judge.gain Judge.Fair);
  check (Alcotest.float 0.) "highly" 3. (Judge.gain Judge.Highly)

let test_panel () =
  let index = Lazy.force dblp in
  let rng = Xr_data.Rng.create 21 in
  match Querylog.sample_intent rng index ~len:2 with
  | None -> Alcotest.fail "no intent"
  | Some intent ->
    let truth = Engine.search index intent in
    let gains = Judge.panel ~judges:6 ~seed:7 index ~intent [ (intent, truth); ([ "zzz" ], []) ] in
    check Alcotest.int "one gain per entry" 2 (Array.length gains);
    check Alcotest.bool "truth beats junk" true (gains.(0) > gains.(1))

(* ---- query log ---------------------------------------------------------------- *)

let test_sample_intent_has_results () =
  let index = Lazy.force dblp in
  let rng = Xr_data.Rng.create 33 in
  for _ = 1 to 10 do
    match Querylog.sample_intent rng index ~len:3 with
    | None -> Alcotest.fail "sampling failed"
    | Some intent ->
      check Alcotest.int "length" 3 (List.length intent);
      check Alcotest.bool "meaningful results" true (Engine.search index intent <> [])
  done

let test_corruptions () =
  let index = Lazy.force dblp in
  let th = Xr_text.Thesaurus.default () in
  let rng = Xr_data.Rng.create 55 in
  let cases = Querylog.pool ~thesaurus:th rng index ~per_kind:3 in
  check Alcotest.bool "pool non-trivial" true (List.length cases >= 12);
  List.iter
    (fun (c : Querylog.case) ->
      (* every case needs refinement by construction *)
      check Alcotest.bool
        (Querylog.kind_name c.Querylog.kind ^ " needs refinement")
        true
        (Engine.needs_refinement index c.Querylog.corrupted);
      check Alcotest.bool "intent has results" true (c.Querylog.intent_result_count > 0);
      check Alcotest.bool "repair rules recorded" true (c.Querylog.repair <> []);
      check Alcotest.bool "corruption changed the query" true
        (c.Querylog.corrupted <> c.Querylog.intent))
    cases;
  (* at least 4 distinct kinds materialized on this corpus *)
  let kinds = List.sort_uniq compare (List.map (fun c -> c.Querylog.kind) cases) in
  check Alcotest.bool "kind diversity" true (List.length kinds >= 4)

let test_corrupt_specific_kinds () =
  let index = Lazy.force dblp in
  let rng = Xr_data.Rng.create 77 in
  let th = Xr_text.Thesaurus.default () in
  (* split-word corruption splits one keyword into two *)
  (match Querylog.generate ~thesaurus:th rng index ~kind:Querylog.Split_word ~n:1 with
  | [ c ] ->
    check Alcotest.int "one more keyword" (List.length c.Querylog.intent + 1)
      (List.length c.Querylog.corrupted)
  | _ -> Alcotest.fail "no split-word case");
  (* merged-words corruption removes one *)
  (match Querylog.generate ~thesaurus:th rng index ~kind:Querylog.Merged_words ~n:1 with
  | [ c ] ->
    check Alcotest.int "one fewer keyword" (List.length c.Querylog.intent - 1)
      (List.length c.Querylog.corrupted)
  | _ -> Alcotest.fail "no merged-words case");
  (* overconstrain adds one *)
  match Querylog.generate ~thesaurus:th rng index ~kind:Querylog.Overconstrain ~n:1 with
  | [ c ] ->
    check Alcotest.int "one extra keyword" (List.length c.Querylog.intent + 1)
      (List.length c.Querylog.corrupted)
  | _ -> Alcotest.fail "no overconstrain case"

(* the whole evaluation pipeline is deterministic in its seeds: same seed,
   same pool, same judgements — the reproducibility the paper's fixed
   219-query pool provided *)
let test_reproducibility () =
  let index = Lazy.force dblp in
  let th = Xr_text.Thesaurus.default () in
  let pool seed = Querylog.pool ~thesaurus:th (Xr_data.Rng.create seed) index ~per_kind:2 in
  let a = pool 123 and b = pool 123 in
  check Alcotest.int "same size" (List.length a) (List.length b);
  List.iter2
    (fun (x : Querylog.case) (y : Querylog.case) ->
      check (Alcotest.list Alcotest.string) "same corrupted" x.Querylog.corrupted
        y.Querylog.corrupted;
      check (Alcotest.list Alcotest.string) "same intent" x.Querylog.intent y.Querylog.intent)
    a b;
  (* different seeds give different pools *)
  let c = pool 124 in
  check Alcotest.bool "different seeds diverge" true
    (List.map (fun (x : Querylog.case) -> x.Querylog.corrupted) a
    <> List.map (fun (x : Querylog.case) -> x.Querylog.corrupted) c);
  (* panel verdicts are stable *)
  match a with
  | case :: _ ->
    let truth = Engine.search index case.Querylog.intent in
    let g1 =
      Judge.panel ~judges:6 ~seed:9 index ~intent:case.Querylog.intent
        [ (case.Querylog.intent, truth) ]
    in
    let g2 =
      Judge.panel ~judges:6 ~seed:9 index ~intent:case.Querylog.intent
        [ (case.Querylog.intent, truth) ]
    in
    check (Alcotest.array (Alcotest.float 0.)) "panel deterministic" g1 g2
  | [] -> Alcotest.fail "empty pool"

(* ---- end-to-end effectiveness sanity ------------------------------------------- *)

let test_refinement_recovers_intent () =
  let index = Lazy.force dblp in
  let th = Xr_text.Thesaurus.default () in
  let rng = Xr_data.Rng.create 91 in
  let cases = Querylog.pool ~thesaurus:th rng index ~per_kind:4 in
  let hits = ref 0 and total = ref 0 in
  List.iter
    (fun (c : Querylog.case) ->
      incr total;
      match (Engine.refine index c.Querylog.corrupted).Engine.result with
      | Result.Refined ({ Result.rq; _ } :: _) ->
        let intent_set =
          List.sort_uniq String.compare (List.map Xr_xml.Token.normalize c.Querylog.intent)
        in
        if rq.Xr_refine.Refined_query.keywords = intent_set then incr hits
      | _ -> ())
    cases;
  (* the top-1 refined query should recover the exact intent most of the time *)
  check Alcotest.bool
    (Printf.sprintf "recovery rate %d/%d >= 60%%" !hits !total)
    true
    (float_of_int !hits >= 0.6 *. float_of_int !total)

(* ---- metrics ----------------------------------------------------------------- *)

let dw = Xr_xml.Dewey.of_string

let test_metrics_precision_recall () =
  let relevant = [ dw "0.1"; dw "0.2" ] in
  let retrieved = [ dw "0.1"; dw "0.3" ] in
  let p, r = Xr_eval.Metrics.precision_recall ~relevant ~retrieved in
  check (Alcotest.float 1e-9) "precision" 0.5 p;
  check (Alcotest.float 1e-9) "recall" 0.5 r;
  check (Alcotest.float 1e-9) "f1" 0.5 (Xr_eval.Metrics.f1 ~relevant ~retrieved);
  (* containment counts as a hit *)
  let p2, r2 =
    Xr_eval.Metrics.precision_recall ~relevant:[ dw "0.1" ] ~retrieved:[ dw "0.1.3" ]
  in
  check (Alcotest.float 1e-9) "descendant precision" 1. p2;
  check (Alcotest.float 1e-9) "descendant recall" 1. r2;
  let p3, r3 = Xr_eval.Metrics.precision_recall ~relevant:[] ~retrieved:[ dw "0" ] in
  check (Alcotest.float 1e-9) "empty relevant p" 0. p3;
  check (Alcotest.float 1e-9) "empty relevant r" 0. r3

let test_metrics_mrr () =
  check (Alcotest.float 1e-9) "first hit" 1. (Xr_eval.Metrics.reciprocal_rank [ true; false ]);
  check (Alcotest.float 1e-9) "third hit" (1. /. 3.)
    (Xr_eval.Metrics.reciprocal_rank [ false; false; true ]);
  check (Alcotest.float 1e-9) "no hit" 0. (Xr_eval.Metrics.reciprocal_rank [ false; false ]);
  check (Alcotest.float 1e-9) "mrr" 0.75
    (Xr_eval.Metrics.mean_reciprocal_rank [ [ true ]; [ false; true ] ]);
  check (Alcotest.float 1e-9) "mrr empty" 0. (Xr_eval.Metrics.mean_reciprocal_rank [])

(* ---- trace persistence ----------------------------------------------------- *)

let test_trace_roundtrip () =
  let index = Lazy.force dblp in
  let th = Xr_text.Thesaurus.default () in
  let rng = Xr_data.Rng.create 321 in
  let pool = Querylog.pool ~thesaurus:th rng index ~per_kind:2 in
  let pool2 = Xr_eval.Trace.decode (Xr_eval.Trace.encode pool) in
  check Alcotest.int "cardinality" (List.length pool) (List.length pool2);
  List.iter2
    (fun (a : Querylog.case) (b : Querylog.case) ->
      check Alcotest.bool "kind" true (a.Querylog.kind = b.Querylog.kind);
      check (Alcotest.list Alcotest.string) "intent" a.Querylog.intent b.Querylog.intent;
      check (Alcotest.list Alcotest.string) "corrupted" a.Querylog.corrupted b.Querylog.corrupted;
      check Alcotest.int "repair rules" (List.length a.Querylog.repair)
        (List.length b.Querylog.repair);
      List.iter2
        (fun (r1 : Xr_refine.Rule.t) r2 ->
          check Alcotest.bool "rule equal" true (Xr_refine.Rule.equal r1 r2))
        a.Querylog.repair b.Querylog.repair;
      check Alcotest.int "result count" a.Querylog.intent_result_count
        b.Querylog.intent_result_count)
    pool pool2;
  (* file round trip *)
  let path = Filename.temp_file "xrtrace" ".bin" in
  Xr_eval.Trace.save path pool;
  let pool3 = Xr_eval.Trace.load path in
  Sys.remove path;
  check Alcotest.int "file roundtrip" (List.length pool) (List.length pool3)

let test_trace_rejects_garbage () =
  (try
     ignore (Xr_eval.Trace.decode "not a trace");
     Alcotest.fail "garbage accepted"
   with Failure _ -> ());
  (* truncated payload *)
  let index = Lazy.force dblp in
  let th = Xr_text.Thesaurus.default () in
  let rng = Xr_data.Rng.create 55 in
  let pool = Querylog.pool ~thesaurus:th rng index ~per_kind:1 in
  let s = Xr_eval.Trace.encode pool in
  try
    ignore (Xr_eval.Trace.decode (String.sub s 0 (String.length s - 3)));
    Alcotest.fail "truncated trace accepted"
  with Failure _ -> ()

let () =
  Alcotest.run "xr_eval"
    [
      ( "cg",
        [
          Alcotest.test_case "cumulated gain" `Quick test_cg_vector;
          Alcotest.test_case "mean" `Quick test_cg_mean;
          Alcotest.test_case "ndcg" `Quick test_ndcg;
        ] );
      ( "judges",
        [
          Alcotest.test_case "ground truth ranks top" `Quick test_judge_grades_truth_highest;
          Alcotest.test_case "gain scale" `Quick test_judge_gains;
          Alcotest.test_case "panel" `Quick test_panel;
        ] );
      ( "querylog",
        [
          Alcotest.test_case "intent sampling" `Quick test_sample_intent_has_results;
          Alcotest.test_case "corruptions verified" `Quick test_corruptions;
          Alcotest.test_case "corruption shapes" `Quick test_corrupt_specific_kinds;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "precision/recall/f1" `Quick test_metrics_precision_recall;
          Alcotest.test_case "reciprocal rank" `Quick test_metrics_mrr;
        ] );
      ( "trace",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_trace_rejects_garbage;
        ] );
      ( "reproducibility", [ Alcotest.test_case "seeded pipeline" `Quick test_reproducibility ] );
      ( "end-to-end",
        [ Alcotest.test_case "refinement recovers intent" `Quick test_refinement_recovers_intent ]
      );
    ]
