(* End-to-end reproduction of the paper's worked examples (Section I,
   Examples 1, 3, 4 and the Table I-style queries) plus cross-corpus
   consistency checks. *)

open Xr_xml
open Xr_refine
module Index = Xr_index.Index

let check = Alcotest.check

let fig1 = lazy (Index.build (Xr_data.Figure1.doc ()))

let dblp =
  lazy
    (Index.build
       (Xr_data.Dblp.doc ~config:{ Xr_data.Dblp.default_config with publications = 400 } ()))

let baseball = lazy (Index.build (Xr_data.Baseball.doc ()))

let refine ?(alg = Engine.Partition) ?(k = 4) index q =
  let config = { Engine.default_config with algorithm = alg; k } in
  (Engine.refine ~config index q).Engine.result

let top_keywords result =
  match result with
  | Result.Refined ({ Result.rq; _ } :: _) -> Some rq.Refined_query.keywords
  | Result.Refined [] | Result.Original _ | Result.No_result -> None

(* Example 1: {database, publication} has no match because the data says
   proceedings/article/inproceedings; refinement substitutes. *)
let test_example1 () =
  let index = Lazy.force fig1 in
  check Alcotest.bool "needs refinement" true
    (Engine.needs_refinement index [ "database"; "publication" ]);
  match refine index [ "database"; "publication" ] with
  | Result.Refined matches ->
    let keys = List.map (fun (m : Result.rq_match) -> m.Result.rq.Refined_query.keywords) matches in
    check Alcotest.bool "a synonym/stem substitution surfaced" true
      (List.exists
         (fun ks ->
           List.mem "inproceedings" ks || List.mem "article" ks || List.mem "publications" ks
           || List.mem "proceedings" ks)
         keys);
    List.iter
      (fun (m : Result.rq_match) ->
        check Alcotest.bool "every RQ has results" true (m.Result.slcas <> []))
      matches
  | Result.Original _ | Result.No_result -> Alcotest.fail "expected refinement"

(* Example 4 (Section VI-A): Q = {on, line, data, base}; the optimal RQ is
   {online, database} with dissimilarity 2 via two merges; the cheaper
   mixed candidates have no meaningful SLCA. *)
let test_example4 () =
  let index = Lazy.force fig1 in
  List.iter
    (fun alg ->
      match refine ~alg index [ "on"; "line"; "data"; "base" ] with
      | Result.Refined matches ->
        let best_ds =
          List.fold_left
            (fun a (m : Result.rq_match) -> min a m.Result.rq.Refined_query.dissimilarity)
            max_int matches
        in
        check Alcotest.int (Engine.algorithm_name alg ^ ": optimal dissimilarity") 2 best_ds;
        let winner =
          List.find
            (fun (m : Result.rq_match) -> m.Result.rq.Refined_query.dissimilarity = 2)
            matches
        in
        check
          (Alcotest.list Alcotest.string)
          (Engine.algorithm_name alg ^ ": the paper's winner")
          [ "database"; "online" ]
          winner.Result.rq.Refined_query.keywords;
        check
          (Alcotest.list Alcotest.string)
          "SLCA is the online-database title" [ "0.0.1.1.0" ]
          (List.map Dewey.to_string winner.Result.slcas)
      | Result.Original _ | Result.No_result ->
        Alcotest.failf "%s found no refinement" (Engine.algorithm_name alg))
    Engine.[ Stack_refine; Partition; Short_list_eager ]

(* Table I style Q4: {john, xml, 2003} matches only at the root, which is
   meaningless; deleting "john" (the term absent from the XML/2003 author)
   yields the meaningful results. *)
let test_q4_overconstrained () =
  let index = Lazy.force fig1 in
  check Alcotest.bool "slca exists but meaningless" true
    (Xr_slca.Engine.query Xr_slca.Engine.Stack index [ "john"; "xml"; "2003" ] <> []);
  check Alcotest.bool "needs refinement" true
    (Engine.needs_refinement index [ "john"; "xml"; "2003" ]);
  match refine index [ "john"; "xml"; "2003" ] with
  | Result.Refined ({ Result.rq; slcas; _ } :: _) ->
    check (Alcotest.list Alcotest.string) "keeps xml+2003" [ "2003"; "xml" ] rq.Refined_query.keywords;
    check Alcotest.int "two inproceedings" 2 (List.length slcas)
  | _ -> Alcotest.fail "expected refinement"

(* Example with hobby: {online, games} -> split "online" -> hobby node. *)
let test_hobby_split () =
  let index = Lazy.force fig1 in
  check Alcotest.bool "needs refinement" true (Engine.needs_refinement index [ "online"; "games" ]);
  match refine index [ "online"; "games" ] with
  | Result.Refined matches ->
    let hit =
      List.exists
        (fun (m : Result.rq_match) ->
          m.Result.rq.Refined_query.keywords = [ "games"; "line"; "on" ]
          && List.exists (fun d -> Dewey.to_string d = "0.1.2") m.Result.slcas)
        matches
    in
    check Alcotest.bool "hobby:0.1.2 via split" true hit
  | Result.Original _ | Result.No_result -> Alcotest.fail "expected refinement"

(* Mixed refinements (the paper's QX1 style): one misspelled keyword and
   one wrongly split keyword in the same query, built from a sampled
   satisfiable intent. *)
let test_mixed_refinements () =
  let index = Lazy.force dblp in
  let rng = Xr_data.Rng.create 404 in
  let rec find_case attempts =
    if attempts = 0 then None
    else
      match Xr_eval.Querylog.sample_intent rng index ~len:3 with
      | Some intent when List.exists (fun k -> String.length k >= 6) intent -> (
        (* split the first long keyword, misspell another *)
        let long = List.find (fun k -> String.length k >= 6) intent in
        let rest = List.filter (fun k -> k <> long) intent in
        match rest with
        | other :: _ when String.length other >= 5 ->
          let cut = String.length long / 2 in
          let a = String.sub long 0 cut and b = String.sub long cut (String.length long - cut) in
          let wrong = String.sub other 0 (String.length other - 1) ^ "zq" in
          if Doc.keyword_id index.Index.doc wrong = None then
            Some (intent, List.map (fun k -> if k = other then wrong else k) rest @ [ a; b ])
          else find_case (attempts - 1)
        | _ -> find_case (attempts - 1))
      | _ -> find_case (attempts - 1)
  in
  match find_case 50 with
  | None -> () (* corpus did not yield a suitable intent; nothing to assert *)
  | Some (intent, corrupted) -> (
    match refine index corrupted with
    | Result.Refined ({ Result.rq; _ } :: _) ->
      check
        (Alcotest.list Alcotest.string)
        "mixed corruption fully repaired"
        (List.sort_uniq String.compare intent)
        rq.Refined_query.keywords
    | Result.Refined [] | Result.Original _ | Result.No_result ->
      Alcotest.fail "expected refinement")

(* The rules_used trace only contains rules relevant to the query. *)
let test_rules_used_relevant () =
  let index = Lazy.force fig1 in
  let resp = Engine.refine index [ "on"; "line" ] in
  List.iter
    (fun (r : Rule.t) ->
      check Alcotest.bool "lhs within query" true
        (List.for_all (fun k -> List.mem k [ "on"; "line" ]) r.Rule.lhs))
    resp.Engine.rules_used

(* User-provided rules merge with mined rules. *)
let test_user_rules () =
  let index = Lazy.force fig1 in
  let my_rule = Rule.synonym ~ds:1 "footy" "games" in
  let config = { Engine.default_config with auto_mine = false } in
  let resp = Engine.refine ~config ~rules:[ my_rule ] index [ "on"; "line"; "footy" ] in
  match resp.Engine.result with
  | Result.Refined matches ->
    check Alcotest.bool "user synonym applied" true
      (List.exists
         (fun (m : Result.rq_match) -> List.mem "games" m.Result.rq.Refined_query.keywords)
         matches)
  | Result.Original _ | Result.No_result -> Alcotest.fail "expected refinement via user rule"

(* With auto_mine off and no rules, only deletions are possible. *)
let test_no_rules_only_deletion () =
  let index = Lazy.force fig1 in
  let config = { Engine.default_config with auto_mine = false } in
  let resp = Engine.refine ~config index [ "xml"; "qqqq" ] in
  match resp.Engine.result with
  | Result.Refined ({ Result.rq; _ } :: _) ->
    check (Alcotest.list Alcotest.string) "deletion only" [ "xml" ] rq.Refined_query.keywords;
    check Alcotest.int "deletion cost" 2 rq.Refined_query.dissimilarity
  | _ -> Alcotest.fail "expected deletion-based refinement"

(* Cross-corpus: every algorithm agrees on the optimal dissimilarity for a
   generated workload on DBLP and Baseball. *)
let agreement_on index seed =
  let th = Xr_text.Thesaurus.default () in
  let rng = Xr_data.Rng.create seed in
  let cases = Xr_eval.Querylog.pool ~thesaurus:th rng index ~per_kind:2 in
  List.iter
    (fun (c : Xr_eval.Querylog.case) ->
      let best alg =
        match refine ~alg index c.Xr_eval.Querylog.corrupted with
        | Result.Refined ms ->
          List.fold_left
            (fun a (m : Result.rq_match) -> min a m.Result.rq.Refined_query.dissimilarity)
            max_int ms
        | Result.Original _ -> -1
        | Result.No_result -> -2
      in
      let s = best Engine.Stack_refine
      and p = best Engine.Partition
      and e = best Engine.Short_list_eager in
      if not (s = p && p = e) then
        Alcotest.failf "disagreement on {%s}: stack=%d partition=%d sle=%d"
          (String.concat "," c.Xr_eval.Querylog.corrupted)
          s p e)
    cases

let test_agreement_dblp () = agreement_on (Lazy.force dblp) 101

let test_agreement_baseball () = agreement_on (Lazy.force baseball) 102

let auction = lazy (Index.build (Xr_data.Auction.doc ()))

let test_agreement_auction () = agreement_on (Lazy.force auction) 103

(* Index persistence end-to-end: refinement over a reloaded index gives the
   same answers. *)
let test_refine_after_reload () =
  let index = Lazy.force fig1 in
  let kv = Xr_store.Kv.memory () in
  Index.save index kv;
  let index2 = Index.load kv in
  let q = [ "on"; "line"; "data"; "base" ] in
  let r1 = top_keywords (refine index q) and r2 = top_keywords (refine index2 q) in
  check Alcotest.bool "same top refinement" true (r1 = r2 && r1 <> None)

(* Example 5 flavor: within the partition scan, candidates that cannot
   beat the current Top-2K are pruned before any SLCA computation — the
   skipped-partition counter must be visible on suitable queries. *)
let test_example5_partition_pruning () =
  let index = Lazy.force dblp in
  let config = { Engine.default_config with algorithm = Engine.Partition; k = 1 } in
  (* a query whose repair keywords are rare: most partitions offer only
     expensive deletion-based candidates and are skipped *)
  let resp = Engine.refine ~config index [ "databse"; "optimzation"; "pages" ] in
  match resp.Engine.stats with
  | Engine.Partition_stats s ->
    Alcotest.(check bool) "partitions were visited" true (s.Xr_refine.Partition.partitions_visited > 0);
    Alcotest.(check bool)
      (Printf.sprintf "some partitions skipped before SLCA (%d/%d)"
         s.Xr_refine.Partition.partitions_skipped s.Xr_refine.Partition.partitions_visited)
      true
      (s.Xr_refine.Partition.partitions_skipped > 0);
    Alcotest.(check bool) "dp runs bounded by signature cache" true
      (s.Xr_refine.Partition.dp_runs <= s.Xr_refine.Partition.partitions_visited)
  | _ -> Alcotest.fail "wrong stats"

(* Example 6 flavor: SLE stops before consuming every keyword list when
   the optimistic bound exceeds the K-th dissimilarity. *)
let test_example6_sle_early_stop () =
  let index = Lazy.force dblp in
  let config = { Engine.default_config with algorithm = Engine.Short_list_eager; k = 1 } in
  (* the misspelled token has a tiny corrected list; the common keyword
     list should never be consumed *)
  let resp = Engine.refine ~config index [ "author"; "databse" ] in
  match resp.Engine.stats with
  | Engine.Sle_stats s ->
    Alcotest.(check bool) "ran" true (s.Xr_refine.Sle.dp_runs > 0);
    Alcotest.(check bool)
      (Printf.sprintf "stopped before consuming all lists (consumed %d)"
         s.Xr_refine.Sle.keywords_processed)
      true
      (s.Xr_refine.Sle.stopped_early || s.Xr_refine.Sle.keywords_processed < 3)
  | _ -> Alcotest.fail "wrong stats"

(* refinement over an incrementally grown index equals a rebuilt one *)
let test_incremental_refinement_equivalence () =
  let full_tree = Xr_data.Dblp.scaled ~publications:60 ~seed:23 in
  let children = Tree.element_children full_tree in
  let base =
    Tree.elem full_tree.Tree.tag
      (List.filteri (fun i _ -> i < 40) children |> List.map (fun c -> Tree.Elem c))
  in
  let grown =
    List.fold_left
      (fun idx pub -> Index.append_partition idx pub)
      (Index.build (Doc.of_tree base))
      (List.filteri (fun i _ -> i >= 40) children)
  in
  let rebuilt = Index.build (Doc.of_tree full_tree) in
  let th = Xr_text.Thesaurus.default () in
  let rng = Xr_data.Rng.create 404 in
  let cases = Xr_eval.Querylog.pool ~thesaurus:th rng rebuilt ~per_kind:2 in
  List.iter
    (fun (c : Xr_eval.Querylog.case) ->
      let outcome index =
        match (Engine.refine index c.Xr_eval.Querylog.corrupted).Engine.result with
        | Result.Original slcas -> ("original", List.map Dewey.to_string slcas)
        | Result.No_result -> ("none", [])
        | Result.Refined ms ->
          ( "refined",
            List.concat_map
              (fun (m : Result.rq_match) ->
                Refined_query.key m.Result.rq :: List.map Dewey.to_string m.Result.slcas)
              ms )
      in
      if outcome grown <> outcome rebuilt then
        Alcotest.failf "incremental/rebuilt divergence on {%s}"
          (String.concat "," c.Xr_eval.Querylog.corrupted))
    cases;
  (* plain searches agree too *)
  List.iter
    (fun q ->
      if Engine.search grown q <> Engine.search rebuilt q then
        Alcotest.failf "search divergence on {%s}" (String.concat "," q))
    (List.map (fun (c : Xr_eval.Querylog.case) -> c.Xr_eval.Querylog.intent) cases)

(* a larger corpus end to end (kept as a slow test) *)
let test_scale_smoke () =
  let index = Index.build (Xr_xml.Doc.of_tree (Xr_data.Dblp.scaled ~publications:5000 ~seed:3)) in
  let th = Xr_text.Thesaurus.default () in
  let rng = Xr_data.Rng.create 3000 in
  let cases = Xr_eval.Querylog.pool ~thesaurus:th rng index ~per_kind:2 in
  Alcotest.(check bool) "cases generated" true (List.length cases >= 8);
  List.iter
    (fun (c : Xr_eval.Querylog.case) ->
      match (Engine.refine index c.Xr_eval.Querylog.corrupted).Engine.result with
      | Result.Refined (_ :: _) -> ()
      | Result.Original _ -> Alcotest.fail "corrupted query matched directly"
      | Result.Refined [] | Result.No_result ->
        Alcotest.failf "no refinement at scale for {%s}"
          (String.concat "," c.Xr_eval.Querylog.corrupted))
    cases

(* full configuration matrix smoke: every algorithm x SLCA engine x
   result-ranking setting behaves sanely on both query classes *)
let test_config_matrix () =
  let index = Lazy.force fig1 in
  List.iter
    (fun algorithm ->
      List.iter
        (fun slca ->
          List.iter
            (fun rank_results ->
              let config = { Engine.default_config with algorithm; slca; rank_results; k = 2 } in
              (* a broken query refines *)
              (match (Engine.refine ~config index [ "on"; "line"; "data"; "base" ]).Engine.result with
              | Result.Refined (_ :: _) -> ()
              | _ -> Alcotest.fail "matrix: expected refinement");
              (* a good query passes through *)
              match (Engine.refine ~config index [ "xml"; "2003" ]).Engine.result with
              | Result.Original (_ :: _) -> ()
              | _ -> Alcotest.fail "matrix: expected original")
            [ false; true ])
        Xr_slca.Engine.all)
    Engine.[ Stack_refine; Partition; Short_list_eager ]

let () =
  Alcotest.run "integration"
    [
      ( "paper-examples",
        [
          Alcotest.test_case "example 1 (term mismatch)" `Quick test_example1;
          Alcotest.test_case "example 4 (merging)" `Quick test_example4;
          Alcotest.test_case "Q4 (overconstrained)" `Quick test_q4_overconstrained;
          Alcotest.test_case "hobby via split" `Quick test_hobby_split;
          Alcotest.test_case "mixed refinements (QX1)" `Quick test_mixed_refinements;
        ] );
      ( "engine",
        [
          Alcotest.test_case "rules_used are relevant" `Quick test_rules_used_relevant;
          Alcotest.test_case "user-provided rules" `Quick test_user_rules;
          Alcotest.test_case "no rules -> deletion only" `Quick test_no_rules_only_deletion;
          Alcotest.test_case "reload roundtrip" `Quick test_refine_after_reload;
        ] );
      ( "config-matrix", [ Alcotest.test_case "24 configurations" `Quick test_config_matrix ] );
      ( "algorithm-behavior",
        [
          Alcotest.test_case "example 5: partition pruning" `Quick test_example5_partition_pruning;
          Alcotest.test_case "example 6: SLE early stop" `Quick test_example6_sle_early_stop;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "grown index = rebuilt index" `Quick
            test_incremental_refinement_equivalence;
          Alcotest.test_case "5000-publication smoke" `Slow test_scale_smoke;
        ] );
      ( "cross-corpus",
        [
          Alcotest.test_case "agreement on dblp" `Quick test_agreement_dblp;
          Alcotest.test_case "agreement on baseball" `Quick test_agreement_baseball;
          Alcotest.test_case "agreement on auction" `Quick test_agreement_auction;
        ] );
    ]
