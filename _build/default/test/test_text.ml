module Ed = Xr_text.Edit_distance
module Stemmer = Xr_text.Stemmer
module Thesaurus = Xr_text.Thesaurus

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ---- edit distance ----------------------------------------------------- *)

let test_distance_known () =
  List.iter
    (fun (a, b, d) ->
      check Alcotest.int (Printf.sprintf "d(%s,%s)" a b) d (Ed.distance a b);
      check Alcotest.int (Printf.sprintf "d(%s,%s) sym" b a) d (Ed.distance b a))
    [
      ("", "", 0);
      ("a", "", 1);
      ("kitten", "sitting", 3);
      ("flaw", "lawn", 2);
      ("database", "databases", 1);
      ("mecin", "machine", 3);
      ("eficient", "efficient", 1);
      ("same", "same", 0);
    ]

let test_within () =
  check (Alcotest.option Alcotest.int) "within hit" (Some 1) (Ed.within ~limit:2 "databse" "database");
  check (Alcotest.option Alcotest.int) "within limit edge" (Some 2) (Ed.within ~limit:2 "flaw" "lawn");
  check (Alcotest.option Alcotest.int) "within miss" None (Ed.within ~limit:2 "kitten" "sitting");
  check (Alcotest.option Alcotest.int) "length gap shortcut" None (Ed.within ~limit:1 "ab" "abcdef");
  check (Alcotest.option Alcotest.int) "empty both" (Some 0) (Ed.within ~limit:0 "" "")

let word_gen = QCheck.Gen.(string_size ~gen:(char_range 'a' 'e') (int_bound 10))

let prop_metric_axioms =
  QCheck.Test.make ~name:"edit distance metric axioms" ~count:300
    (QCheck.make QCheck.Gen.(triple word_gen word_gen word_gen))
    (fun (a, b, c) ->
      let d = Ed.distance in
      d a b = d b a
      && (d a b = 0) = (a = b)
      && d a c <= d a b + d b c)

let prop_within_agrees =
  QCheck.Test.make ~name:"within agrees with distance" ~count:300
    (QCheck.make QCheck.Gen.(pair word_gen word_gen))
    (fun (a, b) ->
      let full = Ed.distance a b in
      List.for_all
        (fun limit ->
          match Ed.within ~limit a b with
          | Some d -> d = full && d <= limit
          | None -> full > limit)
        [ 0; 1; 2; 3 ])

(* ---- stemmer ----------------------------------------------------------- *)

let test_stemmer_known () =
  List.iter
    (fun (w, s) -> check Alcotest.string (Printf.sprintf "stem %s" w) s (Stemmer.stem w))
    [
      ("caresses", "caress");
      ("ponies", "poni");
      ("cats", "cat");
      ("feed", "feed");
      ("agreed", "agre");
      ("plastered", "plaster");
      ("motoring", "motor");
      ("sing", "sing");
      ("conflated", "conflat");
      ("troubling", "troubl");
      ("sized", "size");
      ("hopping", "hop");
      ("falling", "fall");
      ("hissing", "hiss");
      ("fizzed", "fizz");
      ("failing", "fail");
      ("filing", "file");
      ("happy", "happi");
      ("sky", "sky");
      ("relational", "relat");
      ("conditional", "condit");
      ("rational", "ration");
      ("digitizer", "digit");
      ("operator", "oper");
      ("feudalism", "feudal");
      ("decisiveness", "decis");
      ("hopefulness", "hope");
      ("formality", "formal");
      ("sensitivity", "sensit");
      ("triplicate", "triplic");
      ("formative", "form");
      ("formalize", "formal");
      ("electricity", "electr");
      ("electrical", "electr");
      ("hopeful", "hope");
      ("goodness", "good");
      ("revival", "reviv");
      ("allowance", "allow");
      ("inference", "infer");
      ("airliner", "airlin");
      ("adjustable", "adjust");
      ("defensible", "defens");
      ("irritant", "irrit");
      ("replacement", "replac");
      ("adjustment", "adjust");
      ("dependent", "depend");
      ("adoption", "adopt");
      ("communism", "commun");
      ("activate", "activ");
      ("angularity", "angular");
      ("homologous", "homolog");
      ("effective", "effect");
      ("rate", "rate");
      ("cease", "ceas");
      ("controll", "control");
      ("roll", "roll");
      ("matching", "match");
      ("match", "match");
      ("ab", "ab");
    ]

let test_same_stem () =
  check Alcotest.bool "match/matching" true (Stemmer.same_stem "match" "matching");
  check Alcotest.bool "publication/publications" true
    (Stemmer.same_stem "publication" "publications");
  check Alcotest.bool "identical words excluded" false (Stemmer.same_stem "match" "match");
  check Alcotest.bool "unrelated" false (Stemmer.same_stem "match" "query")

(* ---- thesaurus --------------------------------------------------------- *)

let test_thesaurus_default () =
  let th = Thesaurus.default () in
  let syns = List.map fst (Thesaurus.synonyms th "publication") in
  check Alcotest.bool "publication ~ article" true (List.mem "article" syns);
  check Alcotest.bool "publication ~ inproceedings" true (List.mem "inproceedings" syns);
  check Alcotest.bool "symmetric" true
    (List.mem "publication" (List.map fst (Thesaurus.synonyms th "article")));
  check Alcotest.bool "no self link" false (List.mem "publication" syns);
  check
    (Alcotest.option (Alcotest.list Alcotest.string))
    "www expansion"
    (Some [ "world"; "wide"; "web" ])
    (Thesaurus.expansion th "WWW");
  check (Alcotest.option Alcotest.string) "reverse acronym" (Some "www")
    (Thesaurus.acronym_of th [ "world"; "wide"; "web" ]);
  check (Alcotest.option Alcotest.string) "reverse miss" None
    (Thesaurus.acronym_of th [ "wide"; "world"; "web" ])

let test_thesaurus_custom () =
  let th = Thesaurus.empty () in
  check Alcotest.int "empty size" 0 (Thesaurus.size th);
  Thesaurus.add_synonyms th ~ds:2 [ "Foo"; "BAR" ];
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "normalized + scored" [ ("bar", 2) ] (Thesaurus.synonyms th "foo");
  Thesaurus.add_acronym th ~acronym:"ab" ~expansion:[ "alpha"; "beta" ];
  check Alcotest.int "size" 3 (Thesaurus.size th);
  check Alcotest.int "acronym list" 1 (List.length (Thesaurus.acronyms th))

(* ---- trie -------------------------------------------------------------- *)

let test_trie_completion () =
  let t =
    Xr_text.Trie.of_vocabulary
      [ ("data", 100); ("database", 60); ("databases", 10); ("date", 5); ("query", 40) ]
  in
  check Alcotest.int "size" 5 (Xr_text.Trie.size t);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "weighted order"
    [ ("data", 100); ("database", 60); ("databases", 10); ("date", 5) ]
    (Xr_text.Trie.complete t "dat");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "limit"
    [ ("data", 100); ("database", 60) ]
    (Xr_text.Trie.complete t ~limit:2 "dat");
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "miss" []
    (Xr_text.Trie.complete t "xyz");
  check Alcotest.bool "mem" true (Xr_text.Trie.mem t "query");
  check Alcotest.bool "prefix not a word" false (Xr_text.Trie.mem t "dat");
  (* re-adding re-weights without duplicating *)
  Xr_text.Trie.add t "date" 500;
  check Alcotest.int "size stable" 5 (Xr_text.Trie.size t);
  check Alcotest.string "re-weighted to front" "date"
    (fst (List.hd (Xr_text.Trie.complete t "dat")))

let prop_trie_complete_sound =
  let words = [ "aa"; "ab"; "abc"; "b"; "ba"; "bab"; "c" ] in
  QCheck.Test.make ~name:"trie completions = filtered vocabulary" ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_bound 7) (pair (oneofl words) (int_range 1 50)))
           (oneofl [ "a"; "ab"; "b"; "ba"; "c"; "z"; "" ])))
    (fun (pairs, prefix) ->
      let t = Xr_text.Trie.of_vocabulary pairs in
      let got = List.map fst (Xr_text.Trie.complete t ~limit:100 prefix) in
      let expected =
        List.sort_uniq compare (List.map fst pairs)
        |> List.filter (fun w ->
               String.length w >= String.length prefix
               && String.sub w 0 (String.length prefix) = prefix)
      in
      List.sort compare got = expected)

(* ---- thesaurus files ----------------------------------------------------- *)

let test_thesaurus_file () =
  let content =
    "# comment\nsyn: fast quick speedy : 2\nsyn: car automobile\nacr: www = world wide web\n"
  in
  match Thesaurus.parse content with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok t ->
    check
      (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
      "scored group"
      [ ("quick", 2); ("speedy", 2) ]
      (List.sort compare (Thesaurus.synonyms t "fast"));
    check Alcotest.bool "default score" true (List.mem_assoc "automobile" (Thesaurus.synonyms t "car"));
    check
      (Alcotest.option (Alcotest.list Alcotest.string))
      "acronym" (Some [ "world"; "wide"; "web" ]) (Thesaurus.expansion t "www")

let test_thesaurus_file_errors () =
  let bad content =
    match Thesaurus.parse content with
    | Ok _ -> Alcotest.failf "accepted %S" content
    | Error _ -> ()
  in
  bad "nonsense line";
  bad "syn: onlyone";
  bad "syn: a b : zero";
  bad "acr: www world wide web";
  bad "acr: two words = x"

let test_thesaurus_merge () =
  let a = Thesaurus.empty () in
  Thesaurus.add_synonyms a ~ds:1 [ "x"; "y" ];
  let b = Thesaurus.empty () in
  Thesaurus.add_synonyms b ~ds:1 [ "x"; "z" ];
  Thesaurus.add_acronym b ~acronym:"ab" ~expansion:[ "alpha"; "beta" ];
  Thesaurus.merge a b;
  let syns = List.map fst (Thesaurus.synonyms a "x") in
  check Alcotest.bool "kept own" true (List.mem "y" syns);
  check Alcotest.bool "gained merged" true (List.mem "z" syns);
  check Alcotest.bool "gained acronym" true (Thesaurus.expansion a "ab" <> None)

let () =
  Alcotest.run "xr_text"
    [
      ( "edit-distance",
        [
          Alcotest.test_case "known distances" `Quick test_distance_known;
          Alcotest.test_case "bounded variant" `Quick test_within;
          qcheck prop_metric_axioms;
          qcheck prop_within_agrees;
        ] );
      ( "stemmer",
        [
          Alcotest.test_case "porter vectors" `Quick test_stemmer_known;
          Alcotest.test_case "same_stem" `Quick test_same_stem;
        ] );
      ( "thesaurus",
        [
          Alcotest.test_case "default entries" `Quick test_thesaurus_default;
          Alcotest.test_case "custom entries" `Quick test_thesaurus_custom;
          Alcotest.test_case "file parsing" `Quick test_thesaurus_file;
          Alcotest.test_case "file errors" `Quick test_thesaurus_file_errors;
          Alcotest.test_case "merge" `Quick test_thesaurus_merge;
        ] );
      ( "trie",
        [
          Alcotest.test_case "completion" `Quick test_trie_completion;
          qcheck prop_trie_complete_sound;
        ] );
    ]
