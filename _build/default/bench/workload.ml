(* Shared corpora and query workloads for all experiments. *)

module Index = Xr_index.Index
module Querylog = Xr_eval.Querylog
module Rng = Xr_data.Rng

type t = {
  dblp : Index.t;
  dblp_publications : int;
  baseball : Index.t;
  thesaurus : Xr_text.Thesaurus.t;
  pool : Querylog.case list; (* mixed refinement pool on DBLP *)
  controls : string list list; (* queries with meaningful results *)
  quick : bool;
}

let dblp_index ~publications ~seed =
  Index.build (Xr_xml.Doc.of_tree (Xr_data.Dblp.scaled ~publications ~seed))

let create ?(quick = false) ?(seed = 2009) () =
  let dblp_publications = if quick then 600 else 2000 in
  let t0 = Unix.gettimeofday () in
  let dblp = dblp_index ~publications:dblp_publications ~seed:42 in
  let baseball = Index.build (Xr_data.Baseball.doc ()) in
  let thesaurus = Xr_text.Thesaurus.default () in
  let per_kind = if quick then 4 else 8 in
  (* full mode merges pools from three sub-seeds: effectiveness tables on
     a single 44-query pool are noise-dominated at CG@1 *)
  let sub_seeds = if quick then [ seed ] else [ seed; seed + 1; seed + 2 ] in
  let pool =
    List.concat_map
      (fun s -> Querylog.pool ~thesaurus (Rng.create s) dblp ~per_kind)
      sub_seeds
  in
  let rng = Rng.create seed in
  let controls =
    let rec gather acc n =
      if n = 0 then acc
      else
        match Querylog.sample_intent rng dblp ~len:(2 + Rng.int rng 2) with
        | Some q -> gather (q :: acc) (n - 1)
        | None -> gather acc (n - 1)
    in
    gather [] (if quick then 10 else 30)
  in
  Printf.printf
    "workload: dblp=%d publications (%d nodes, %d keywords), baseball=%d nodes, pool=%d \
     corrupted + %d control queries  [built in %.1fs]\n%!"
    dblp_publications
    (Xr_xml.Doc.node_count dblp.Index.doc)
    (List.length (Xr_xml.Doc.vocabulary dblp.Index.doc))
    (Xr_xml.Doc.node_count baseball.Index.doc)
    (List.length pool) (List.length controls)
    (Unix.gettimeofday () -. t0);
  { dblp; dblp_publications; baseball; thesaurus; pool; controls; quick }

let cases_of_kind w kind =
  List.filter (fun (c : Querylog.case) -> c.Querylog.kind = kind) w.pool

(* Pools per corpus for the scalability experiments. *)
let refinement_queries ?(seed = 77) ?(n = 40) index thesaurus =
  let rng = Rng.create seed in
  let cases = Querylog.pool ~thesaurus rng index ~per_kind:((n / 6) + 2) in
  List.map (fun (c : Querylog.case) -> c.Querylog.corrupted) cases
  |> List.filteri (fun i _ -> i < n)
