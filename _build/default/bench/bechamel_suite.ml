(* Statistically robust micro-benchmarks of each experiment's hot kernel:
   one Bechamel test per table/figure of the paper. *)

open Bechamel
open Toolkit
module Slca = Xr_slca.Engine
open Xr_refine

let make_tests (w : Workload.t) =
  let index = w.Workload.dblp in
  let pick_query kind fallback =
    match Workload.cases_of_kind w kind with
    | c :: _ -> c.Xr_eval.Querylog.corrupted
    | [] -> fallback
  in
  let deletion_q = pick_query Xr_eval.Querylog.Overconstrain [ "xml"; "query"; "1997" ] in
  let merge_q = pick_query Xr_eval.Querylog.Split_word [ "data"; "base"; "system" ] in
  let subst_q = pick_query Xr_eval.Querylog.Misspell [ "databse"; "system" ] in
  let refine alg k q () =
    let config = { Engine.default_config with algorithm = alg; k } in
    ignore (Engine.refine ~config index q)
  in
  let slca_lists q =
    List.map
      (fun k ->
        match Xr_xml.Doc.keyword_id index.Xr_index.Index.doc k with
        | Some kw -> Xr_index.Inverted.list index.Xr_index.Index.inverted kw
        | None -> [||])
      q
  in
  let common_lists = slca_lists [ "data"; "system"; "year" ] in
  let dp_kernel =
    let rules =
      Ruleset.mine ~thesaurus:w.Workload.thesaurus index.Xr_index.Index.doc subst_q
    in
    let available k = Xr_xml.Doc.keyword_id index.Xr_index.Index.doc k <> None in
    fun () -> ignore (Optimal_rq.top_k ~rules ~available ~k:8 subst_q)
  in
  let ranking_kernel =
    let rq =
      {
        Refined_query.keywords = [ "data"; "system" ];
        dissimilarity = 2;
        edits = [ Refined_query.Deleted "qqq" ];
      }
    in
    fun () -> ignore (Ranking.score index.Xr_index.Index.stats ~original:deletion_q rq)
  in
  Test.make_grouped ~name:"xrefine"
    [
      Test.make ~name:"tables3-6/optimal-rq-dp" (Staged.stage dp_kernel);
      Test.make ~name:"fig4/stack-refine-top1" (Staged.stage (refine Engine.Stack_refine 1 merge_q));
      Test.make ~name:"fig4/sle-top1" (Staged.stage (refine Engine.Short_list_eager 1 merge_q));
      Test.make ~name:"fig4/partition-top1" (Staged.stage (refine Engine.Partition 1 merge_q));
      Test.make ~name:"fig4/scan-slca"
        (Staged.stage (fun () -> ignore (Slca.compute Slca.Scan_eager common_lists)));
      Test.make ~name:"fig4/stack-slca"
        (Staged.stage (fun () -> ignore (Slca.compute Slca.Stack common_lists)));
      Test.make ~name:"fig5/partition-top6" (Staged.stage (refine Engine.Partition 6 deletion_q));
      Test.make ~name:"fig5/sle-top6" (Staged.stage (refine Engine.Short_list_eager 6 deletion_q));
      Test.make ~name:"tables9-10/ranking-score" (Staged.stage ranking_kernel);
    ]

let run w =
  let tests = make_tests w in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.3) () in
  let analyze = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  print_newline ();
  print_endline "== Bechamel micro-benchmarks (one per experiment kernel, ns/run)";
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all analyze Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> Printf.printf "  %-40s %14.0f ns/run\n%!" name est
      | Some [] | None -> Printf.printf "  %-40s (no estimate)\n%!" name)
    (List.sort compare rows)
