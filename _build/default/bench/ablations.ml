(* Ablation studies: the paper's unnumbered decay study (Section VIII-C
   chooses p = 0.8 empirically) and the design choices DESIGN.md calls
   out — DP beam width, deletion cost, search-for threshold, SLCA engine
   choice — plus a demonstration of the specialization extension. *)

open Xr_refine
module Index = Xr_index.Index
module Querylog = Xr_eval.Querylog
module Judge = Xr_eval.Judge
module Cg = Xr_eval.Cg

let intent_key (c : Querylog.case) =
  List.sort_uniq String.compare (List.map Xr_xml.Token.normalize c.Querylog.intent)

(* fraction of pool cases whose Top-1 refined query equals the intent *)
let recovery_rate (w : Workload.t) config =
  let index = w.Workload.dblp in
  let hits, total =
    List.fold_left
      (fun (h, t) (c : Querylog.case) ->
        match (Engine.refine ~config index c.Querylog.corrupted).Engine.result with
        | Result.Refined ({ Result.rq; _ } :: _) ->
          ((if rq.Refined_query.keywords = intent_key c then h + 1 else h), t + 1)
        | _ -> (h, t + 1))
      (0, 0) w.Workload.pool
  in
  (hits, total)

(* ---- decay factor p (Guideline 4): the paper picks 0.8 ------------------- *)

let decay (w : Workload.t) =
  let rows =
    List.map
      (fun p ->
        let ranking = { Ranking.default_config with decay = p } in
        let cg, n = Experiments.cg_for_ranking w ranking in
        let at i = if Array.length cg = 0 then 0. else cg.(min (i - 1) (Array.length cg - 1)) in
        [
          Printf.sprintf "p=%.1f" p;
          Tables.f2 (at 1);
          Tables.f2 (at 2);
          Tables.f2 (at 3);
          Tables.f2 (at 4);
          string_of_int n;
        ])
      [ 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]
  in
  Tables.print
    ~title:"Decay study (Section VIII-C): CG@K vs the dissimilarity decay factor p"
    ~header:[ "decay"; "CG@1"; "CG@2"; "CG@3"; "CG@4"; "queries" ]
    rows

(* ---- design-choice ablations ------------------------------------------------ *)

let beam_sweep (w : Workload.t) =
  let index = w.Workload.dblp in
  let rows =
    List.map
      (fun beam ->
        let dp = { Optimal_rq.default_config with beam } in
        let config = { Engine.default_config with dp; k = 3 } in
        let t =
          Timing.mean_over w.Workload.pool (fun (c : Querylog.case) ->
              Timing.median ~repeat:3 (fun () -> Engine.refine ~config index c.Querylog.corrupted))
        in
        let hits, total = recovery_rate w config in
        [ string_of_int beam; Tables.ms t; Printf.sprintf "%d/%d" hits total ])
      [ 4; 8; 16; 32; 64 ]
  in
  Tables.print
    ~title:"Ablation: k-best DP beam width (time vs Top-1 intent recovery)"
    ~header:[ "beam"; "avg time (ms)"; "recovered" ]
    rows

let deletion_cost_sweep (w : Workload.t) =
  let rows =
    List.map
      (fun cost ->
        let dp = { Optimal_rq.default_config with deletion_cost = cost } in
        let config = { Engine.default_config with dp; k = 3 } in
        let hits, total = recovery_rate w config in
        [ string_of_int cost; Printf.sprintf "%d/%d" hits total ])
      [ 1; 2; 3; 4 ]
  in
  Tables.print
    ~title:
      "Ablation: term-deletion cost (paper principle: strictly above other operations; default 2)"
    ~header:[ "deletion cost"; "Top-1 intent recovered" ]
    rows

let threshold_sweep (w : Workload.t) =
  let index = w.Workload.dblp in
  let rows =
    List.map
      (fun threshold ->
        let search_for = { Xr_slca.Search_for.default_config with threshold } in
        let config = { Engine.default_config with search_for; k = 3 } in
        let hits, total = recovery_rate w config in
        let avg_candidates =
          Timing.mean_over w.Workload.pool (fun (c : Querylog.case) ->
              let ids =
                List.filter_map
                  (Xr_xml.Doc.keyword_id index.Xr_index.Index.doc)
                  c.Querylog.corrupted
              in
              float_of_int
                (List.length
                   (Xr_slca.Search_for.infer ~config:search_for index.Xr_index.Index.stats ids)))
        in
        [
          Printf.sprintf "%.2f" threshold;
          Tables.f2 avg_candidates;
          Printf.sprintf "%d/%d" hits total;
        ])
      [ 0.5; 0.7; 0.8; 0.9; 1.0 ]
  in
  Tables.print
    ~title:"Ablation: search-for confidence threshold (candidate-list size vs recovery)"
    ~header:[ "threshold"; "avg |L|"; "recovered" ]
    rows

let slca_engine_sweep (w : Workload.t) =
  let index = w.Workload.dblp in
  let rows =
    List.map
      (fun slca ->
        let config = { Engine.default_config with slca; k = 3 } in
        let t =
          Timing.mean_over w.Workload.pool (fun (c : Querylog.case) ->
              Timing.median ~repeat:3 (fun () -> Engine.refine ~config index c.Querylog.corrupted))
        in
        [ Xr_slca.Engine.name slca; Tables.ms t ])
      Xr_slca.Engine.all
  in
  Tables.print
    ~title:"Ablation: plugged SLCA engine under Partition (Lemma 3 orthogonality)"
    ~header:[ "engine"; "avg refine time (ms)" ]
    rows

(* incremental maintenance: appending one publication vs re-indexing *)
let incremental_sweep (_w : Workload.t) =
  let rows =
    List.map
      (fun n ->
        let tree = Xr_data.Dblp.scaled ~publications:n ~seed:8 in
        let children = Xr_xml.Tree.element_children tree in
        let base =
          Xr_xml.Tree.elem tree.Xr_xml.Tree.tag
            (List.filteri (fun i _ -> i < n - 1) children
            |> List.map (fun c -> Xr_xml.Tree.Elem c))
        in
        let last = List.nth children (n - 1) in
        let base_index = Xr_index.Index.build (Xr_xml.Doc.of_tree base) in
        let t_append =
          Timing.median ~repeat:5 (fun () -> Xr_index.Index.append_partition base_index last)
        in
        let t_rebuild =
          Timing.median ~repeat:5 (fun () -> Xr_index.Index.build (Xr_xml.Doc.of_tree tree))
        in
        [
          string_of_int n;
          Tables.ms t_append;
          Tables.ms t_rebuild;
          Printf.sprintf "x%.0f" (t_rebuild /. Float.max 1e-9 t_append);
        ])
      [ 250; 500; 1000; 2000 ]
  in
  Tables.print
    ~title:"Extension: incremental append of one publication vs full re-index"
    ~header:[ "publications"; "append (ms)"; "rebuild (ms)"; "speedup" ]
    rows

let min_instances_sweep (_w : Workload.t) =
  (* evaluated on the auction corpus, whose singleton section containers
     motivated the filter *)
  let index = Xr_index.Index.build (Xr_data.Auction.doc ()) in
  let th = Xr_text.Thesaurus.default () in
  let rng = Xr_data.Rng.create 71 in
  let pool = Querylog.pool ~thesaurus:th rng index ~per_kind:3 in
  let rows =
    List.map
      (fun min_instances ->
        let search_for = { Xr_slca.Search_for.default_config with min_instances } in
        let config = { Engine.default_config with search_for; k = 4 } in
        let hits, total =
          List.fold_left
            (fun (h, t) (c : Querylog.case) ->
              match (Engine.refine ~config index c.Querylog.corrupted).Engine.result with
              | Result.Refined ({ Result.rq; _ } :: _) ->
                ((if rq.Refined_query.keywords = intent_key c then h + 1 else h), t + 1)
              | _ -> (h, t + 1))
            (0, 0) pool
        in
        [ string_of_int min_instances; Printf.sprintf "%d/%d" hits total ])
      [ 1; 2; 3; 5 ]
  in
  Tables.print
    ~title:
      "Ablation: search-for min_instances on the auction corpus (singleton-section exclusion)"
    ~header:[ "min instances"; "Top-1 intent recovered" ]
    rows

let ablations w =
  beam_sweep w;
  min_instances_sweep w;
  deletion_cost_sweep w;
  threshold_sweep w;
  slca_engine_sweep w;
  incremental_sweep w

(* per-corruption-kind effectiveness: which defects are easy to repair? *)
let by_kind (w : Workload.t) =
  let index = w.Workload.dblp in
  let rows =
    List.filter_map
      (fun kind ->
        match Workload.cases_of_kind w kind with
        | [] -> None
        | cases ->
          let hits = ref 0 and ranks = ref [] and gains = ref [] in
          List.iter
            (fun (c : Querylog.case) ->
              match (Engine.refine ~config:{ Engine.default_config with k = 4 } index c.Querylog.corrupted).Engine.result with
              | Result.Refined matches ->
                let hit_list =
                  List.map
                    (fun (m : Result.rq_match) ->
                      m.Result.rq.Refined_query.keywords = intent_key c)
                    matches
                in
                if (match hit_list with h :: _ -> h | [] -> false) then incr hits;
                ranks := hit_list :: !ranks;
                (match matches with
                | { Result.rq; slcas; _ } :: _ ->
                  (match
                     Judge.panel ~judges:6 ~seed:31 index ~intent:c.Querylog.intent
                       [ (rq.Refined_query.keywords, slcas) ]
                   with
                  | [| g |] -> gains := g :: !gains
                  | _ -> ())
                | [] -> ())
              | Result.Original _ | Result.No_result -> ranks := [ [] ] @ !ranks)
            cases;
          Some
            [
              Querylog.kind_name kind;
              string_of_int (List.length cases);
              Printf.sprintf "%d/%d" !hits (List.length cases);
              Tables.f2 (Xr_eval.Metrics.mean_reciprocal_rank !ranks);
              Tables.f2 (Timing.mean_over !gains Fun.id);
            ])
      Querylog.all_kinds
  in
  Tables.print
    ~title:"Per-corruption-kind effectiveness (Top-1 recovery, MRR, judge gain)"
    ~header:[ "corruption"; "queries"; "top-1 recovered"; "intent MRR"; "judge gain" ]
    rows

(* ---- index construction (Section VII) ---------------------------------------- *)

let index_construction (_w : Workload.t) =
  let rows =
    List.map
      (fun publications ->
        let tree = Xr_data.Dblp.scaled ~publications ~seed:42 in
        let doc = Xr_xml.Doc.of_tree tree in
        let t_build = Timing.median ~repeat:3 (fun () -> Xr_index.Index.build doc) in
        let index = Xr_index.Index.build doc in
        let path = Filename.temp_file "xrbench" ".xrdb" in
        Sys.remove path;
        let t_save =
          Timing.time_once (fun () ->
              let kv = Xr_store.Kv.btree_file path in
              Xr_index.Index.save index kv;
              kv.Xr_store.Kv.close ())
        in
        let size = (Unix.stat path).Unix.st_size in
        let t_load = Timing.median ~repeat:3 (fun () -> Xr_index.Index.load (Xr_store.Kv.btree_file path)) in
        Sys.remove path;
        [
          string_of_int publications;
          string_of_int (Xr_xml.Doc.node_count doc);
          Tables.ms t_build;
          Tables.ms t_save;
          Tables.ms t_load;
          Printf.sprintf "%.1f" (float_of_int size /. 1024.);
        ])
      [ 250; 500; 1000; 2000 ]
  in
  Tables.print
    ~title:"Index construction (Section VII): build, persist and reload"
    ~header:[ "publications"; "nodes"; "build (ms)"; "save (ms)"; "load (ms)"; "store (KiB)" ]
    rows

(* ---- baseline comparison (Section I / II positioning) ------------------------ *)

(* static cleaning [10] and boolean-OR relaxation vs integrated refinement *)
let baselines (w : Workload.t) =
  let index = w.Workload.dblp in
  let pool = w.Workload.pool in
  let total = List.length pool in
  (* static cleaning: plausible rewrite, no result guarantee *)
  let clean_stranded, clean_recovered =
    List.fold_left
      (fun (stranded, recovered) (c : Querylog.case) ->
        match Static_clean.clean ~k:1 index c.Querylog.corrupted with
        | rq :: _ ->
          ( (if Static_clean.stranded index rq then stranded + 1 else stranded),
            if rq.Refined_query.keywords = intent_key c then recovered + 1 else recovered )
        | [] -> (stranded + 1, recovered))
      (0, 0) pool
  in
  (* integrated refinement: results guaranteed by construction *)
  let xr_empty, xr_recovered =
    List.fold_left
      (fun (empty, recovered) (c : Querylog.case) ->
        match (Engine.refine index c.Querylog.corrupted).Engine.result with
        | Result.Refined ({ Result.rq; slcas; _ } :: _) ->
          ( (if slcas = [] then empty + 1 else empty),
            if rq.Refined_query.keywords = intent_key c then recovered + 1 else recovered )
        | _ -> (empty + 1, recovered))
      (0, 0) pool
  in
  (* judge the top result list: OR relaxation vs the refined query *)
  let avg f = Timing.mean_over pool f in
  let or_gain =
    avg (fun (c : Querylog.case) ->
        let hits = Xr_slca.Or_search.query ~limit:4 index c.Querylog.corrupted in
        let slcas = List.map (fun (h : Xr_slca.Or_search.hit) -> h.Xr_slca.Or_search.dewey) hits in
        match
          Judge.panel ~judges:6 ~seed:99 index ~intent:c.Querylog.intent
            [ (c.Querylog.corrupted, slcas) ]
        with
        | [| g |] -> g
        | _ -> 0.)
  in
  let xr_gain =
    avg (fun (c : Querylog.case) ->
        match (Engine.refine index c.Querylog.corrupted).Engine.result with
        | Result.Refined ({ Result.rq; slcas; _ } :: _) -> (
          match
            Judge.panel ~judges:6 ~seed:99 index ~intent:c.Querylog.intent
              [ (rq.Refined_query.keywords, slcas) ]
          with
          | [| g |] -> g
          | _ -> 0.)
        | _ -> 0.)
  in
  Tables.print
    ~title:
      "Baselines: static cleaning [10] and boolean-OR relaxation vs integrated refinement"
    ~header:[ "approach"; "no meaningful result"; "intent recovered"; "judge gain of top answer" ]
    [
      [
        "static cleaning (top-1)";
        Printf.sprintf "%d/%d" clean_stranded total;
        Printf.sprintf "%d/%d" clean_recovered total;
        "-";
      ];
      [ "boolean OR relaxation"; "0 (by relaxation)"; "-"; Tables.f2 or_gain ];
      [
        "XRefine (partition, top-1)";
        Printf.sprintf "%d/%d" xr_empty total;
        Printf.sprintf "%d/%d" xr_recovered total;
        Tables.f2 xr_gain;
      ];
    ]

(* ---- specialization (extension: the paper's future work) -------------------- *)

let specialization (w : Workload.t) =
  let index = w.Workload.dblp in
  let config = { Specialize.default_config with max_results = 30; k = 3 } in
  let queries =
    [ [ "data" ]; [ "system" ]; [ "query" ]; [ "analysis" ]; [ "author"; "year" ] ]
  in
  let rows =
    List.filter_map
      (fun q ->
        let results = Engine.search index q in
        if List.length results <= config.Specialize.max_results then None
        else begin
          let suggestions = Specialize.suggest ~config index q in
          let cells =
            List.map
              (fun (s : Specialize.suggestion) ->
                Printf.sprintf "+%s (%d)" s.Specialize.added (List.length s.Specialize.slcas))
              suggestions
          in
          let cells = cells @ List.init (max 0 (3 - List.length cells)) (fun _ -> "-") in
          Some
            (Printf.sprintf "{%s} (%d results)" (String.concat "," q) (List.length results)
            :: List.filteri (fun i _ -> i < 3) cells)
        end)
      queries
  in
  Tables.print
    ~title:"Extension: specialization of over-broad queries (added keyword, narrowed size)"
    ~header:[ "broad query"; "S1"; "S2"; "S3" ]
    rows
