(* One function per table/figure of the paper's Section VIII. *)

open Xr_refine
module Index = Xr_index.Index
module Querylog = Xr_eval.Querylog
module Judge = Xr_eval.Judge
module Cg = Xr_eval.Cg
module Slca = Xr_slca.Engine

let refine_result ?(alg = Engine.Partition) ?(k = 1) index query =
  let config = { Engine.default_config with algorithm = alg; k } in
  (Engine.refine ~config index query).Engine.result

let top1 result =
  match result with
  | Result.Refined (m :: _) -> Some m
  | Result.Refined [] | Result.Original _ | Result.No_result -> None

let query_str q = String.concat "," q

(* ---- Tables III-VI: per-operation query sets ---------------------------- *)

let operation_table (w : Workload.t) ~title ~kinds ~id_prefix =
  let cases = List.concat_map (Workload.cases_of_kind w) kinds in
  let rows =
    List.mapi
      (fun i (c : Querylog.case) ->
        let suggestion, size =
          match top1 (refine_result w.Workload.dblp c.Querylog.corrupted) with
          | Some m ->
            ( String.concat "; " (Refined_query.operations m.Result.rq),
              List.length m.Result.slcas )
          | None -> ("(no refinement found)", 0)
        in
        [
          Printf.sprintf "%s%d" id_prefix (i + 1);
          query_str c.Querylog.corrupted;
          suggestion;
          string_of_int size;
        ])
      cases
  in
  Tables.print ~title ~header:[ "ID"; "Original Query"; "Suggested Replacement"; "Size" ] rows

let table3 w =
  operation_table w ~title:"Table III: query set for TERM DELETION"
    ~kinds:[ Querylog.Overconstrain ] ~id_prefix:"QD"

let table4 w =
  operation_table w ~title:"Table IV: query set for TERM MERGING"
    ~kinds:[ Querylog.Split_word ] ~id_prefix:"QM"

let table5 w =
  operation_table w ~title:"Table V: query set for TERM SPLIT"
    ~kinds:[ Querylog.Merged_words ] ~id_prefix:"QS"

let table6 w =
  operation_table w ~title:"Table VI: query set for TERM SUBSTITUTION"
    ~kinds:[ Querylog.Misspell; Querylog.Synonym_mismatch; Querylog.Acronym_mismatch ]
    ~id_prefix:"QT"

(* ---- Figure 4: Top-1 refinement time per sample query -------------------- *)

let slca_time index query alg =
  let lists =
    List.map
      (fun k ->
        match Xr_xml.Doc.keyword_id index.Index.doc k with
        | Some kw -> Xr_index.Inverted.list index.Index.inverted kw
        | None -> [||])
      (List.sort_uniq compare query)
  in
  Timing.median (fun () -> Slca.compute alg lists)

let fig4 (w : Workload.t) =
  let index = w.Workload.dblp in
  let sample kinds n =
    List.concat_map (Workload.cases_of_kind w) kinds |> List.filteri (fun i _ -> i < n)
  in
  let queries =
    sample [ Querylog.Overconstrain ] 3
    @ sample [ Querylog.Split_word ] 3
    @ sample [ Querylog.Merged_words ] 3
    @ sample [ Querylog.Misspell; Querylog.Synonym_mismatch ] 3
  in
  let rows =
    List.mapi
      (fun i (c : Querylog.case) ->
        let q = c.Querylog.corrupted in
        let t_alg alg =
          Timing.median (fun () -> refine_result ~alg ~k:1 index q)
        in
        [
          Printf.sprintf "Q%d(%s)" (i + 1) (Querylog.kind_name c.Querylog.kind);
          query_str q;
          Tables.ms (t_alg Engine.Stack_refine);
          Tables.ms (t_alg Engine.Short_list_eager);
          Tables.ms (t_alg Engine.Partition);
          Tables.ms (slca_time index q Slca.Stack);
          Tables.ms (slca_time index q Slca.Scan_eager);
        ])
      queries
  in
  Tables.print
    ~title:"Figure 4: Top-1 refinement time on sample queries, hot cache (ms)"
    ~header:[ "ID"; "query"; "stack-refine"; "SLE"; "Partition"; "stack-slca"; "scan-slca" ]
    rows;
  (* the paper's headline comparisons *)
  let avg alg =
    Timing.mean_over queries (fun (c : Querylog.case) ->
        Timing.median (fun () -> refine_result ~alg ~k:1 index c.Querylog.corrupted))
  in
  let avg_slca =
    Timing.mean_over queries (fun (c : Querylog.case) ->
        slca_time index c.Querylog.corrupted Slca.Scan_eager)
  in
  let p = avg Engine.Partition and s = avg Engine.Stack_refine and e = avg Engine.Short_list_eager in
  Printf.printf
    "summary: avg stack-refine=%sms  SLE=%sms  Partition=%sms  scan-slca(original)=%sms\n"
    (Tables.ms s) (Tables.ms e) (Tables.ms p) (Tables.ms avg_slca);
  Printf.printf "shape check: Partition fastest of the three? %b; stack-refine slowest? %b\n"
    (p <= s && p <= e) (s >= p && s >= e);
  (* The paper's overhead claim: on queries that do NOT need refinement,
     the adaptive pipeline costs only a constant factor over a plain SLCA
     run of the same query. *)
  let controls = List.filteri (fun i _ -> i < 8) w.Workload.controls in
  if controls <> [] then begin
    let t_refine =
      Timing.mean_over controls (fun q ->
          Timing.median (fun () -> refine_result ~alg:Engine.Partition ~k:1 index q))
    in
    let t_slca =
      Timing.mean_over controls (fun q -> slca_time index q Slca.Scan_eager)
    in
    Printf.printf
      "adaptive overhead on %d matching (control) queries: partition-refine=%sms vs \
       scan-slca=%sms (x%.2f)\n"
      (List.length controls) (Tables.ms t_refine) (Tables.ms t_slca)
      (t_refine /. Float.max 1e-9 t_slca)
  end

(* ---- Figure 5: effect of K on Top-K refinement --------------------------- *)

let fig5_series index queries ~runs ~ks alg =
  List.map
    (fun k ->
      let t =
        Timing.mean_over queries (fun q ->
            Timing.median ~repeat:runs (fun () -> refine_result ~alg ~k index q))
      in
      (k, t))
    ks

let fig5 ?(corpus = "DBLP") (w : Workload.t) index =
  let n = if w.Workload.quick then 10 else (if corpus = "DBLP" then 40 else 20) in
  let runs = if w.Workload.quick then 3 else 5 in
  let queries = Workload.refinement_queries ~n index w.Workload.thesaurus in
  let ks = [ 1; 2; 3; 4; 5; 6 ] in
  let part = fig5_series index queries ~runs ~ks Engine.Partition in
  let sle = fig5_series index queries ~runs ~ks Engine.Short_list_eager in
  let rows =
    List.map2
      (fun (k, tp) (_, te) -> [ string_of_int k; Tables.ms tp; Tables.ms te ])
      part sle
  in
  Tables.print
    ~title:
      (Printf.sprintf "Figure 5 (%s): Top-K refinement time vs K, avg over %d queries (ms)"
         corpus (List.length queries))
    ~header:[ "K"; "Partition"; "SLE" ] rows;
  Chart.grouped
    ~title:(Printf.sprintf "Figure 5 (%s)" corpus)
    ~unit:"ms"
    [
      ("Partition", List.map (fun (k, t) -> (Printf.sprintf "K=%d" k, t *. 1000.)) part);
      ("SLE", List.map (fun (k, t) -> (Printf.sprintf "K=%d" k, t *. 1000.)) sle);
    ];
  let slope series =
    match (List.hd series, List.nth series (List.length series - 1)) with
    | (_, t1), (_, t6) -> t6 /. Float.max 1e-9 t1
  in
  Printf.printf "shape check (%s): growth K=1..6 Partition x%.2f vs SLE x%.2f\n" corpus
    (slope part) (slope sle)

let fig5a w = fig5 ~corpus:"DBLP" w w.Workload.dblp

let fig5b w = fig5 ~corpus:"Baseball" w w.Workload.baseball

(* extension: the XMark-style auction corpus has only five huge
   partitions — the stress shape for the partition algorithm *)
let fig5c w =
  let auction =
    Xr_index.Index.build
      (Xr_data.Auction.doc
         ~config:{ Xr_data.Auction.default_config with items = 400; people = 250; open_auctions = 200 }
         ())
  in
  fig5 ~corpus:"Auction" w auction

(* ---- Figure 6: effect of data size on Top-3 refinement ------------------- *)

let fig6 (w : Workload.t) =
  let full = w.Workload.dblp_publications in
  let runs = if w.Workload.quick then 3 else 5 in
  let n = if w.Workload.quick then 8 else 20 in
  let points =
    List.map
      (fun pct ->
        let publications = full * pct / 100 in
        let index = Workload.dblp_index ~publications ~seed:42 in
        let queries = Workload.refinement_queries ~n index w.Workload.thesaurus in
        let t alg =
          Timing.mean_over queries (fun q ->
              Timing.median ~repeat:runs (fun () -> refine_result ~alg ~k:3 index q))
        in
        (pct, publications, t Engine.Partition, t Engine.Short_list_eager))
      [ 20; 40; 60; 80; 100 ]
  in
  let rows =
    List.map
      (fun (pct, publications, tp, te) ->
        [ Printf.sprintf "%d%% (%d pubs)" pct publications; Tables.ms tp; Tables.ms te ])
      points
  in
  Tables.print
    ~title:"Figure 6: Top-3 refinement time vs data size (ms)"
    ~header:[ "data size"; "Partition"; "SLE" ] rows;
  Chart.grouped ~title:"Figure 6" ~unit:"ms"
    [
      ("Partition", List.map (fun (pct, _, tp, _) -> (Printf.sprintf "%d%%" pct, tp *. 1000.)) points);
      ("SLE", List.map (fun (pct, _, _, te) -> (Printf.sprintf "%d%%" pct, te *. 1000.)) points);
    ]

(* ---- Table VII: Top-4 refined queries with result counts ------------------ *)

let table7 (w : Workload.t) =
  let index = w.Workload.dblp in
  let queries = List.filteri (fun i _ -> i < 10) w.Workload.pool in
  let rows =
    List.mapi
      (fun i (c : Querylog.case) ->
        let cells =
          match refine_result ~k:4 index c.Querylog.corrupted with
          | Result.Refined matches ->
            List.map
              (fun (m : Result.rq_match) ->
                Printf.sprintf "{%s},%d"
                  (String.concat "," m.Result.rq.Refined_query.keywords)
                  (List.length m.Result.slcas))
              matches
          | Result.Original _ -> [ "(no refinement needed)" ]
          | Result.No_result -> [ "(none)" ]
        in
        let cells = cells @ List.init (max 0 (4 - List.length cells)) (fun _ -> "-") in
        Printf.sprintf "Q%d {%s}" (i + 1) (query_str c.Querylog.corrupted)
        :: List.filteri (fun j _ -> j < 4) cells)
      queries
  in
  Tables.print
    ~title:"Table VII: Top-4 refined queries with matching result numbers"
    ~header:[ "query"; "RQ1"; "RQ2"; "RQ3"; "RQ4" ]
    rows

(* ---- Table VIII: query pool statistics ------------------------------------ *)

let table8 (w : Workload.t) =
  let pool = w.Workload.pool in
  let avg_len =
    Timing.mean_over pool (fun (c : Querylog.case) ->
        float_of_int (List.length c.Querylog.corrupted))
  in
  let needing = List.length pool in
  let rows =
    List.map
      (fun kind ->
        let cases = Workload.cases_of_kind w kind in
        let avg_results =
          Timing.mean_over cases (fun (c : Querylog.case) ->
              float_of_int c.Querylog.intent_result_count)
        in
        [
          Querylog.kind_name kind;
          string_of_int (List.length cases);
          Tables.f2
            (Timing.mean_over cases (fun (c : Querylog.case) ->
                 float_of_int (List.length c.Querylog.corrupted)));
          Tables.f2 avg_results;
        ])
      Querylog.all_kinds
  in
  Tables.print
    ~title:"Table VIII: query pool statistics"
    ~header:[ "corruption"; "#queries"; "avg length"; "avg intent results" ]
    rows;
  Printf.printf
    "pool: %d queries needing refinement (avg length %.2f) + %d control queries with results\n"
    needing avg_len
    (List.length w.Workload.controls)

(* ---- Tables IX & X: effectiveness of the ranking model -------------------- *)

(* Grade the Top-4 RQ list produced under [ranking] for each pool case. *)
let cg_for_ranking (w : Workload.t) ranking =
  let index = w.Workload.dblp in
  let vectors =
    List.filter_map
      (fun (c : Querylog.case) ->
        let config =
          { Engine.default_config with algorithm = Engine.Partition; k = 4; ranking }
        in
        match (Engine.refine ~config index c.Querylog.corrupted).Engine.result with
        | Result.Refined [] | Result.Original _ | Result.No_result -> None
        | Result.Refined matches ->
          let ranked =
            List.map
              (fun (m : Result.rq_match) ->
                (m.Result.rq.Refined_query.keywords, m.Result.slcas))
              matches
          in
          Some
            (Cg.cumulate
               (Judge.panel ~judges:6 ~seed:1234 index ~intent:c.Querylog.intent ranked)))
      w.Workload.pool
  in
  (Cg.mean vectors, List.length vectors)

let cg_row name cg =
  let at i = if Array.length cg = 0 then 0. else cg.(min (i - 1) (Array.length cg - 1)) in
  [ name; Tables.f2 (at 1); Tables.f2 (at 2); Tables.f2 (at 3); Tables.f2 (at 4) ]

(* MRR of the exact intent repair within the Top-4 list, as a binary
   complement to the graded CG evaluation *)
let intent_mrr (w : Workload.t) ranking =
  let index = w.Workload.dblp in
  let hit_lists =
    List.filter_map
      (fun (c : Querylog.case) ->
        let intent =
          List.sort_uniq String.compare (List.map Xr_xml.Token.normalize c.Querylog.intent)
        in
        let config = { Engine.default_config with algorithm = Engine.Partition; k = 4; ranking } in
        match (Engine.refine ~config index c.Querylog.corrupted).Engine.result with
        | Result.Refined matches ->
          Some
            (List.map
               (fun (m : Result.rq_match) -> m.Result.rq.Refined_query.keywords = intent)
               matches)
        | Result.Original _ | Result.No_result -> None)
      w.Workload.pool
  in
  Xr_eval.Metrics.mean_reciprocal_rank hit_lists

let table9 (w : Workload.t) =
  let variants =
    [ ("RS0 (full model)", Ranking.rs0) ]
    @ List.map (fun i -> (Printf.sprintf "RS%d (no guideline %d)" i i, Ranking.ablate i)) [ 1; 2; 3; 4 ]
  in
  let rows =
    List.map
      (fun (name, variant) ->
        let ranking = { Ranking.default_config with variant } in
        let cg, _ = cg_for_ranking w ranking in
        cg_row name cg @ [ Tables.f2 (intent_mrr w ranking) ]
      )
      variants
  in
  Tables.print
    ~title:"Table IX: CG@K for the ranking model and its guideline ablations (6 judges)"
    ~header:[ "model"; "CG@1"; "CG@2"; "CG@3"; "CG@4"; "intent MRR" ]
    rows

let table10 (w : Workload.t) =
  let weights = [ (1., 1.); (1., 0.); (0., 1.); (2., 1.); (1., 2.) ] in
  let rows =
    List.map
      (fun (alpha, beta) ->
        let cg, _ = cg_for_ranking w { Ranking.default_config with alpha; beta } in
        cg_row (Printf.sprintf "alpha=%.0f beta=%.0f" alpha beta) cg)
      weights
  in
  Tables.print
    ~title:"Table X: CG@K for different (alpha, beta) weightings (6 judges)"
    ~header:[ "weights"; "CG@1"; "CG@2"; "CG@3"; "CG@4" ]
    rows
