(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section VIII). Usage:

     dune exec bench/main.exe                      # everything
     dune exec bench/main.exe -- --quick           # smaller corpus/workload
     dune exec bench/main.exe -- --exp fig5a       # one experiment
     dune exec bench/main.exe -- --list            # experiment ids
     dune exec bench/main.exe -- --no-bechamel     # skip micro-benchmarks *)

let experiments =
  [
    ("table3", "Table III: term-deletion query set", Experiments.table3);
    ("table4", "Table IV: term-merging query set", Experiments.table4);
    ("table5", "Table V: term-split query set", Experiments.table5);
    ("table6", "Table VI: term-substitution query set", Experiments.table6);
    ("fig4", "Figure 4: Top-1 refinement time per sample query", Experiments.fig4);
    ("fig5a", "Figure 5(a): Top-K sweep on DBLP", Experiments.fig5a);
    ("fig5b", "Figure 5(b): Top-K sweep on Baseball", Experiments.fig5b);
    ("fig5c", "Extension: Top-K sweep on the auction corpus (few huge partitions)", Experiments.fig5c);
    ("fig6", "Figure 6: data-size sweep", Experiments.fig6);
    ("table7", "Table VII: Top-4 refined queries", Experiments.table7);
    ("table8", "Table VIII: query pool statistics", Experiments.table8);
    ("table9", "Table IX: ranking-model ablations (CG@K)", Experiments.table9);
    ("table10", "Table X: alpha/beta weightings (CG@K)", Experiments.table10);
    ("decay", "Decay study (Sec. VIII-C): CG@K vs p", Ablations.decay);
    ("ablations", "Design-choice ablations (beam, deletion cost, threshold, SLCA engine)", Ablations.ablations);
    ("index", "Index construction: build/persist/reload (Section VII)", Ablations.index_construction);
    ("baselines", "Baselines: static cleaning and OR relaxation vs XRefine", Ablations.baselines);
    ("bykind", "Per-corruption-kind effectiveness", Ablations.by_kind);
    ("specialize", "Extension: specialization of over-broad queries", Ablations.specialization);
  ]

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let no_bechamel = List.mem "--no-bechamel" args in
  if List.mem "--list" args then begin
    List.iter (fun (id, desc, _) -> Printf.printf "%-8s %s\n" id desc) experiments;
    exit 0
  end;
  let rec selected = function
    | "--exp" :: id :: rest -> id :: selected rest
    | _ :: rest -> selected rest
    | [] -> []
  in
  let wanted = selected args in
  let rec seed_of = function
    | "--seed" :: s :: _ -> int_of_string s
    | _ :: rest -> seed_of rest
    | [] -> 2009
  in
  let seed = seed_of args in
  let to_run =
    if wanted = [] then experiments
    else
      List.filter (fun (id, _, _) -> List.mem id wanted) experiments
      |> function
      | [] ->
        Printf.eprintf "unknown experiment(s): %s (try --list)\n" (String.concat " " wanted);
        exit 1
      | l -> l
  in
  let t0 = Unix.gettimeofday () in
  let w = Workload.create ~quick ~seed () in
  List.iter
    (fun (id, desc, f) ->
      Printf.printf "\n### [%s] %s\n%!" id desc;
      let t = Unix.gettimeofday () in
      f w;
      Printf.printf "[%s] done in %.1fs\n%!" id (Unix.gettimeofday () -. t))
    to_run;
  if not no_bechamel then Bechamel_suite.run w;
  Printf.printf "\ntotal benchmark time: %.1fs\n" (Unix.gettimeofday () -. t0)
