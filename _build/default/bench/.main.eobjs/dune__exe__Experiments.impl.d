bench/experiments.ml: Array Chart Engine Float List Printf Ranking Refined_query Result String Tables Timing Workload Xr_data Xr_eval Xr_index Xr_refine Xr_slca Xr_xml
