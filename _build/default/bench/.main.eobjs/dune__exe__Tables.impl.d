bench/tables.ml: Array Buffer List Printf String
