bench/main.ml: Ablations Array Bechamel_suite Experiments List Printf String Sys Unix Workload
