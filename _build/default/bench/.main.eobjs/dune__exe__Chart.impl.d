bench/chart.ml: Float List Printf String
