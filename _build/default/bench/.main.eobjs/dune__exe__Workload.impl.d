bench/workload.ml: List Printf Unix Xr_data Xr_eval Xr_index Xr_text Xr_xml
