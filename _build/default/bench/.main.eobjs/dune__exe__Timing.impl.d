bench/timing.ml: List Sys Unix
