bench/main.mli:
