(* Wall-clock timing: warm once, run [repeat] times, report the median —
   robust against one-off GC pauses, matching the paper's hot-cache
   methodology. *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  ignore (Sys.opaque_identity (f ()));
  Unix.gettimeofday () -. t0

let median ?(repeat = 5) f =
  ignore (Sys.opaque_identity (f ()));
  let samples = List.init repeat (fun _ -> time_once f) in
  let sorted = List.sort compare samples in
  List.nth sorted (repeat / 2)

let mean_over xs f =
  match xs with
  | [] -> 0.
  | _ -> List.fold_left (fun acc x -> acc +. f x) 0. xs /. float_of_int (List.length xs)
