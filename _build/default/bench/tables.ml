(* Plain-text table rendering for the experiment reports. *)

let rule width = String.make width '-'

let render ~title ~header rows =
  let cols = List.length header in
  let widths = Array.make cols 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) header;
  List.iter
    (fun row ->
      List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell) row)
    rows;
  let buf = Buffer.create 1024 in
  let line row =
    List.iteri
      (fun i cell ->
        Buffer.add_string buf (if i = 0 then "| " else " | ");
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_string buf " |\n"
  in
  let total = Array.fold_left ( + ) 0 widths + (3 * cols) + 1 in
  Buffer.add_char buf '\n';
  Buffer.add_string buf ("== " ^ title ^ "\n");
  Buffer.add_string buf (rule total);
  Buffer.add_char buf '\n';
  line header;
  Buffer.add_string buf (rule total);
  Buffer.add_char buf '\n';
  List.iter line rows;
  Buffer.add_string buf (rule total);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let print ~title ~header rows = print_string (render ~title ~header rows)

let ms f = Printf.sprintf "%.2f" (f *. 1000.)

let f2 f = Printf.sprintf "%.3f" f
