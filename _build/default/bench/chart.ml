(* ASCII charts for the benchmark "figures": horizontal bars per series,
   scaled to the largest value, so the figures of the paper read as
   figures in the terminal too. *)

let bar_width = 44

(* [series]: (label, [(x-label, value)]) — one group of bars per x-label,
   one bar per series. *)
let grouped ~title ~unit (series : (string * (string * float) list) list) =
  match series with
  | [] -> ()
  | _ ->
    let all = List.concat_map (fun (_, pts) -> List.map snd pts) series in
    let vmax = List.fold_left Float.max 1e-12 all in
    let label_width =
      List.fold_left
        (fun acc (_, pts) -> List.fold_left (fun a (x, _) -> max a (String.length x)) acc pts)
        1 series
    in
    let series_width =
      List.fold_left (fun a (name, _) -> max a (String.length name)) 1 series
    in
    Printf.printf "\n-- %s (bar = %s, full width = %.2f)\n" title unit vmax;
    let xs = match series with (_, pts) :: _ -> List.map fst pts | [] -> [] in
    List.iter
      (fun x ->
        List.iteri
          (fun i (name, pts) ->
            match List.assoc_opt x pts with
            | None -> ()
            | Some v ->
              let n = int_of_float (Float.round (v /. vmax *. float_of_int bar_width)) in
              let n = max 0 (min bar_width n) in
              Printf.printf "%-*s %-*s |%s%s %.2f\n" label_width
                (if i = 0 then x else "")
                series_width name (String.make n '#')
                (String.make (bar_width - n) ' ')
                v)
          series;
        print_newline ())
      xs
