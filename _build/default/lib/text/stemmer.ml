(* A faithful port of Porter's 1980 algorithm. [b] holds the word being
   stemmed; [k] is the index of its current last letter; [j] marks the
   stem end while a suffix match is under consideration. *)

type state = { mutable b : Bytes.t; mutable k : int; mutable j : int }

let rec is_cons s i =
  match Bytes.get s.b i with
  | 'a' | 'e' | 'i' | 'o' | 'u' -> false
  | 'y' -> if i = 0 then true else not (is_cons s (i - 1))
  | _ -> true

(* Number of VC sequences in [0..j]. *)
let measure s =
  let n = ref 0 and i = ref 0 in
  let break = ref false in
  (* skip initial consonants *)
  while not !break do
    if !i > s.j then break := true
    else if not (is_cons s !i) then break := true
    else incr i
  done;
  if !i <= s.j then begin
    let continue = ref true in
    while !continue do
      (* skip vowels *)
      let b1 = ref false in
      while not !b1 do
        if !i > s.j then b1 := true
        else if is_cons s !i then b1 := true
        else incr i
      done;
      if !i > s.j then continue := false
      else begin
        incr n;
        (* skip consonants *)
        let b2 = ref false in
        while not !b2 do
          if !i > s.j then b2 := true
          else if not (is_cons s !i) then b2 := true
          else incr i
        done;
        if !i > s.j then continue := false
      end
    done
  end;
  !n

let vowel_in_stem s =
  let rec go i = i <= s.j && (not (is_cons s i) || go (i + 1)) in
  go 0

let double_cons s i = i >= 1 && Bytes.get s.b i = Bytes.get s.b (i - 1) && is_cons s i

(* consonant-vowel-consonant ending at [i], last consonant not w, x or y *)
let cvc s i =
  if i < 2 || (not (is_cons s i)) || is_cons s (i - 1) || not (is_cons s (i - 2)) then false
  else
    match Bytes.get s.b i with
    | 'w' | 'x' | 'y' -> false
    | _ -> true

(* Does [0..k] end with [suffix]? Sets [j] to the stem end if so. *)
let ends s suffix =
  let l = String.length suffix in
  if l > s.k + 1 then false
  else if Bytes.sub_string s.b (s.k - l + 1) l <> suffix then false
  else begin
    s.j <- s.k - l;
    true
  end

(* Replace the suffix [j+1..k] by [rep]. *)
let set_to s rep =
  let l = String.length rep in
  Bytes.blit_string rep 0 s.b (s.j + 1) l;
  s.k <- s.j + l

let replace_if_m_positive s rep = if measure s > 0 then set_to s rep

(* step 1a: plurals *)
let step1a s =
  if Bytes.get s.b s.k = 's' then begin
    if ends s "sses" then s.k <- s.k - 2
    else if ends s "ies" then set_to s "i"
    else if Bytes.get s.b (s.k - 1) <> 's' then s.k <- s.k - 1
  end

(* step 1b: -ed, -ing *)
let step1b s =
  let continue_1b = ref false in
  if ends s "eed" then begin
    if measure s > 0 then s.k <- s.k - 1
  end
  else if ends s "ed" then begin
    if vowel_in_stem s then begin
      s.k <- s.j;
      continue_1b := true
    end
  end
  else if ends s "ing" then
    if vowel_in_stem s then begin
      s.k <- s.j;
      continue_1b := true
    end;
  if !continue_1b then begin
    if ends s "at" then set_to s "ate"
    else if ends s "bl" then set_to s "ble"
    else if ends s "iz" then set_to s "ize"
    else if double_cons s s.k then begin
      match Bytes.get s.b s.k with
      | 'l' | 's' | 'z' -> ()
      | _ -> s.k <- s.k - 1
    end
    else begin
      s.j <- s.k;
      if measure s = 1 && cvc s s.k then set_to s "e"
    end
  end

(* step 1c: -y -> -i when the stem has a vowel *)
let step1c s =
  if ends s "y" && vowel_in_stem s then Bytes.set s.b s.k 'i'

let pairs2 =
  [
    ("ational", "ate"); ("tional", "tion"); ("enci", "ence"); ("anci", "ance");
    ("izer", "ize"); ("abli", "able"); ("alli", "al"); ("entli", "ent");
    ("eli", "e"); ("ousli", "ous"); ("ization", "ize"); ("ation", "ate");
    ("ator", "ate"); ("alism", "al"); ("iveness", "ive"); ("fulness", "ful");
    ("ousness", "ous"); ("aliti", "al"); ("iviti", "ive"); ("biliti", "ble");
  ]

let pairs3 =
  [
    ("icate", "ic"); ("ative", ""); ("alize", "al"); ("iciti", "ic");
    ("ical", "ic"); ("ful", ""); ("ness", "");
  ]

let apply_pairs s pairs =
  match List.find_opt (fun (suf, _) -> ends s suf) pairs with
  | Some (_, rep) -> replace_if_m_positive s rep
  | None -> ()

let step2 s = apply_pairs s pairs2

let step3 s = apply_pairs s pairs3

let suffixes4 =
  [
    "al"; "ance"; "ence"; "er"; "ic"; "able"; "ible"; "ant"; "ement"; "ment";
    "ent"; "ou"; "ism"; "ate"; "iti"; "ous"; "ive"; "ize";
  ]

(* step 4: drop the suffix when m(stem) > 1 *)
let step4 s =
  let matched =
    if ends s "ion" then
      s.j >= 0 && (Bytes.get s.b s.j = 's' || Bytes.get s.b s.j = 't')
    else List.exists (fun suf -> ends s suf) suffixes4
  in
  if matched && measure s > 1 then s.k <- s.j

(* step 5a: drop trailing -e *)
let step5a s =
  s.j <- s.k;
  if Bytes.get s.b s.k = 'e' then begin
    let m = measure s in
    if m > 1 || (m = 1 && not (cvc s (s.k - 1))) then s.k <- s.k - 1
  end

(* step 5b: -ll -> -l when m > 1 *)
let step5b s =
  s.j <- s.k;
  if Bytes.get s.b s.k = 'l' && double_cons s s.k && measure s > 1 then s.k <- s.k - 1

let stem w =
  if String.length w <= 2 then w
  else begin
    let s = { b = Bytes.of_string w; k = String.length w - 1; j = 0 } in
    step1a s;
    step1b s;
    step1c s;
    step2 s;
    step3 s;
    step4 s;
    step5a s;
    step5b s;
    Bytes.sub_string s.b 0 (s.k + 1)
  end

let same_stem a b = (not (String.equal a b)) && String.equal (stem a) (stem b)
