open Xr_xml

type node = {
  children : (char, node) Hashtbl.t;
  mutable weight : int option; (* Some w iff a word ends here *)
}

type t = { root : node; mutable count : int }

let make_node () = { children = Hashtbl.create 4; weight = None }

let empty () = { root = make_node (); count = 0 }

let add t word weight =
  let word = Token.normalize word in
  if String.length word > 0 then begin
    let rec go node i =
      if i = String.length word then begin
        if node.weight = None then t.count <- t.count + 1;
        node.weight <- Some weight
      end
      else begin
        let c = word.[i] in
        let child =
          match Hashtbl.find_opt node.children c with
          | Some n -> n
          | None ->
            let n = make_node () in
            Hashtbl.add node.children c n;
            n
        in
        go child (i + 1)
      end
    in
    go t.root 0
  end

let of_vocabulary pairs =
  let t = empty () in
  List.iter (fun (w, weight) -> add t w weight) pairs;
  t

let find_node t prefix =
  let rec go node i =
    if i = String.length prefix then Some node
    else
      match Hashtbl.find_opt node.children prefix.[i] with
      | Some child -> go child (i + 1)
      | None -> None
  in
  go t.root 0

let mem t word =
  match find_node t (Token.normalize word) with
  | Some node -> node.weight <> None
  | None -> false

let size t = t.count

let complete t ?(limit = 10) prefix =
  let prefix = Token.normalize prefix in
  match find_node t prefix with
  | None -> []
  | Some start ->
    let acc = ref [] in
    let buf = Buffer.create 16 in
    Buffer.add_string buf prefix;
    let rec walk node =
      (match node.weight with
      | Some w -> acc := (Buffer.contents buf, w) :: !acc
      | None -> ());
      (* deterministic traversal: sorted children *)
      let keys = Hashtbl.fold (fun c _ l -> c :: l) node.children [] in
      List.iter
        (fun c ->
          Buffer.add_char buf c;
          walk (Hashtbl.find node.children c);
          Buffer.truncate buf (Buffer.length buf - 1))
        (List.sort Char.compare keys)
    in
    walk start;
    List.sort
      (fun (w1, n1) (w2, n2) ->
        match Int.compare n2 n1 with 0 -> String.compare w1 w2 | c -> c)
      !acc
    |> List.filteri (fun i _ -> i < limit)
