(** Weighted prefix trie over the document vocabulary: query
    auto-completion ("dat" → data, database, ...) ordered by how often a
    completion occurs in the corpus — the front-of-house counterpart to
    refinement (fix the query before it is even submitted). *)

type t

val empty : unit -> t

(** [add t word weight] registers (or re-weights) a word. Words are
    normalized; empty words are ignored. *)
val add : t -> string -> int -> unit

(** [of_vocabulary pairs] bulk-builds from [(word, weight)] pairs —
    typically the vocabulary with posting-list lengths as weights. *)
val of_vocabulary : (string * int) list -> t

(** [complete t ?limit prefix] is the completions of [prefix] (itself
    included if it is a word), heaviest first, ties alphabetical;
    at most [limit] (default 10). *)
val complete : t -> ?limit:int -> string -> (string * int) list

(** [mem t word] is true iff [word] was added. *)
val mem : t -> string -> bool

(** [size t] is the number of distinct words. *)
val size : t -> int
