lib/text/thesaurus.ml: Hashtbl List Printf String Token Xr_xml
