lib/text/thesaurus.mli:
