lib/text/stemmer.mli:
