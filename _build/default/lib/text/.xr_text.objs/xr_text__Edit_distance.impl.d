lib/text/edit_distance.ml: Array String
