lib/text/stemmer.ml: Bytes List String
