lib/text/trie.mli:
