lib/text/trie.ml: Buffer Char Hashtbl Int List String Token Xr_xml
