lib/text/edit_distance.mli:
