(** Levenshtein edit distance, the morphological dissimilarity metric for
    spelling-correction rules (Section III-B). *)

(** [distance a b] is the minimum number of single-character insertions,
    deletions and substitutions turning [a] into [b]. *)
val distance : string -> string -> int

(** [within ~limit a b] is [Some (distance a b)] when that distance is
    [<= limit], [None] otherwise — computed with a banded DP that stops
    early, so probing a large vocabulary is cheap. *)
val within : limit:int -> string -> string -> int option

(** [similarity a b] is [1 - distance/(max length)], in [0,1]; [1.] for
    equal strings. *)
val similarity : string -> string -> float
