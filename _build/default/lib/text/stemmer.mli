(** Porter stemmer (M.F. Porter, 1980), used to derive word-stemming
    substitution rules (e.g. [match <-> matching], the paper's QX4). *)

(** [stem w] is the Porter stem of the lowercase word [w]. Words of
    length <= 2 are returned unchanged. *)
val stem : string -> string

(** [same_stem a b] is true iff [a] and [b] reduce to the same stem but
    are different words — the condition under which a stemming
    substitution rule applies. *)
val same_stem : string -> string -> bool
