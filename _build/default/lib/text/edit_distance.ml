let distance a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) (fun j -> j) in
    let cur = Array.make (lb + 1) 0 in
    for i = 1 to la do
      cur.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let within ~limit a b =
  let la = String.length a and lb = String.length b in
  if abs (la - lb) > limit then None
  else if la = 0 || lb = 0 then if max la lb <= limit then Some (max la lb) else None
  else begin
    (* banded DP: cells farther than [limit] off the diagonal can never
       come back under the limit *)
    let inf = limit + 1 in
    let prev = Array.make (lb + 1) inf in
    let cur = Array.make (lb + 1) inf in
    for j = 0 to min lb limit do
      prev.(j) <- j
    done;
    let exceeded = ref false in
    let i = ref 1 in
    while (not !exceeded) && !i <= la do
      let lo = max 1 (!i - limit) and hi = min lb (!i + limit) in
      Array.fill cur 0 (lb + 1) inf;
      if !i - limit <= 0 then cur.(0) <- !i;
      let row_min = ref inf in
      for j = lo to hi do
        let cost = if a.[!i - 1] = b.[j - 1] then 0 else 1 in
        let v = min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost) in
        let v = min v inf in
        cur.(j) <- v;
        if v < !row_min then row_min := v
      done;
      if !i - limit <= 0 && cur.(0) < !row_min then row_min := cur.(0);
      if !row_min > limit then exceeded := true;
      Array.blit cur 0 prev 0 (lb + 1);
      incr i
    done;
    if !exceeded || prev.(lb) > limit then None else Some prev.(lb)
  end

let similarity a b =
  let m = max (String.length a) (String.length b) in
  if m = 0 then 1. else 1. -. (float_of_int (distance a b) /. float_of_int m)
