(** Embedded thesaurus: the WordNet substitute that supplies synonym and
    acronym substitution rules (Table II rows 3 and 6).

    A thesaurus maps words to synonym sets with a dissimilarity score (the
    paper takes the score from WordNet; here each group carries one) and
    acronyms to their multi-word expansions. The [default] instance covers
    the computer-science / bibliography domain the paper's workloads come
    from; more entries can be layered on top for custom corpora. *)

type t

(** [empty ()] has no entries. *)
val empty : unit -> t

(** [default ()] is the built-in CS/bibliography thesaurus. *)
val default : unit -> t

(** [add_synonyms t ~ds words] declares all of [words] pairwise synonymous
    at dissimilarity [ds] (words are normalized first). *)
val add_synonyms : t -> ds:int -> string list -> unit

(** [add_acronym t ~acronym ~expansion] declares e.g.
    [~acronym:"www" ~expansion:["world"; "wide"; "web"]]. *)
val add_acronym : t -> acronym:string -> expansion:string list -> unit

(** [synonyms t w] is every synonym of [w] (excluding [w] itself) with its
    dissimilarity score. *)
val synonyms : t -> string -> (string * int) list

(** [expansion t w] is the expansion of acronym [w], if declared. *)
val expansion : t -> string -> string list option

(** [acronym_of t words] is the acronym whose expansion is [words], if
    declared (the reverse of {!expansion}). *)
val acronym_of : t -> string list -> string option

(** [acronyms t] lists all [(acronym, expansion)] pairs. *)
val acronyms : t -> (string * string list) list

(** [size t] is the number of synonym links plus acronym entries. *)
val size : t -> int

(** Plain-text thesaurus files, one entry per line:
    {v
    # synonym group, optional dissimilarity (default 1)
    syn: publication article inproceedings proceedings
    syn: fast quick speedy : 2
    # acronym and its expansion
    acr: www = world wide web
    v} *)

(** [parse content] builds a thesaurus from a file's content.
    Returns [Error msg] (with a line number) on the first bad line. *)
val parse : string -> (t, string) result

(** [load path] parses a file. @raise Failure on malformed content. *)
val load : string -> t

(** [merge a b] layers [b]'s entries on top of [a] (in place on [a]). *)
val merge : t -> t -> unit
