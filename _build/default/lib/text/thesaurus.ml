open Xr_xml

type t = {
  syn : (string, (string * int) list) Hashtbl.t;
  acro : (string, string list) Hashtbl.t;
  acro_rev : (string, string) Hashtbl.t; (* joined expansion -> acronym *)
}

let empty () = { syn = Hashtbl.create 64; acro = Hashtbl.create 16; acro_rev = Hashtbl.create 16 }

let add_syn_link t a b ds =
  let l = try Hashtbl.find t.syn a with Not_found -> [] in
  if not (List.mem_assoc b l) then Hashtbl.replace t.syn a ((b, ds) :: l)

let add_synonyms t ~ds words =
  let words = List.map Token.normalize words in
  List.iter
    (fun a -> List.iter (fun b -> if not (String.equal a b) then add_syn_link t a b ds) words)
    words

let add_acronym t ~acronym ~expansion =
  let acronym = Token.normalize acronym in
  let expansion = List.map Token.normalize expansion in
  Hashtbl.replace t.acro acronym expansion;
  Hashtbl.replace t.acro_rev (String.concat " " expansion) acronym

let synonyms t w = try Hashtbl.find t.syn (Token.normalize w) with Not_found -> []

let expansion t w = Hashtbl.find_opt t.acro (Token.normalize w)

let acronym_of t words =
  Hashtbl.find_opt t.acro_rev (String.concat " " (List.map Token.normalize words))

let acronyms t = Hashtbl.fold (fun a e acc -> (a, e) :: acc) t.acro []

let size t = Hashtbl.length t.syn + Hashtbl.length t.acro

let parse content =
  let t = empty () in
  let lines = String.split_on_char '\n' content in
  let rec go n = function
    | [] -> Ok t
    | line :: rest -> (
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.trim line in
      if line = "" then go (n + 1) rest
      else begin
        let words s =
          String.split_on_char ' ' s |> List.map String.trim
          |> List.filter (fun w -> w <> "")
        in
        let starts p = String.length line > String.length p
                       && String.sub line 0 (String.length p) = p in
        if starts "syn:" then begin
          let body = String.sub line 4 (String.length line - 4) in
          let group, ds =
            match String.index_opt body ':' with
            | Some i -> (
              let d = String.trim (String.sub body (i + 1) (String.length body - i - 1)) in
              match int_of_string_opt d with
              | Some v when v >= 1 -> (String.sub body 0 i, v)
              | _ -> (body, -1))
            | None -> (body, 1)
          in
          if ds < 0 then Error (Printf.sprintf "line %d: bad dissimilarity" n)
          else begin
            match words group with
            | _ :: _ :: _ as ws ->
              add_synonyms t ~ds ws;
              go (n + 1) rest
            | _ -> Error (Printf.sprintf "line %d: a synonym group needs two words" n)
          end
        end
        else if starts "acr:" then begin
          let body = String.sub line 4 (String.length line - 4) in
          match String.index_opt body '=' with
          | Some i -> (
            let acro = String.trim (String.sub body 0 i) in
            let expansion = words (String.sub body (i + 1) (String.length body - i - 1)) in
            match (words acro, expansion) with
            | [ a ], _ :: _ ->
              add_acronym t ~acronym:a ~expansion;
              go (n + 1) rest
            | _ -> Error (Printf.sprintf "line %d: expected 'acr: word = expansion words'" n))
          | None -> Error (Printf.sprintf "line %d: expected '=' in acronym entry" n)
        end
        else Error (Printf.sprintf "line %d: expected 'syn:' or 'acr:'" n)
      end)
  in
  go 1 lines

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  match parse content with Ok t -> t | Error msg -> failwith (path ^ ": " ^ msg)

let merge a b =
  Hashtbl.iter
    (fun w links -> List.iter (fun (s, ds) -> add_syn_link a w s ds) links)
    b.syn;
  Hashtbl.iter (fun acro expansion -> add_acronym a ~acronym:acro ~expansion) b.acro

let default () =
  let t = empty () in
  (* Bibliographic node-type vocabulary (the paper's running example:
     publication ~ proceedings ~ article ~ inproceedings). *)
  add_synonyms t ~ds:1 [ "publication"; "article"; "inproceedings"; "proceedings"; "paper" ];
  add_synonyms t ~ds:1 [ "author"; "writer" ];
  add_synonyms t ~ds:1 [ "booktitle"; "venue" ];
  add_synonyms t ~ds:1 [ "journal"; "periodical" ];
  add_synonyms t ~ds:1 [ "year"; "date" ];
  (* Domain terms. *)
  add_synonyms t ~ds:1 [ "database"; "databases"; "db" ];
  add_synonyms t ~ds:1 [ "query"; "queries" ];
  add_synonyms t ~ds:1 [ "keyword"; "keywords" ];
  add_synonyms t ~ds:1 [ "search"; "retrieval" ];
  add_synonyms t ~ds:1 [ "index"; "indexing" ];
  add_synonyms t ~ds:1 [ "graph"; "network" ];
  add_synonyms t ~ds:1 [ "learning"; "training" ];
  add_synonyms t ~ds:1 [ "efficient"; "fast" ];
  add_synonyms t ~ds:1 [ "parallel"; "concurrent" ];
  (* Baseball vocabulary. *)
  add_synonyms t ~ds:1 [ "player"; "athlete" ];
  add_synonyms t ~ds:1 [ "team"; "club" ];
  add_synonyms t ~ds:1 [ "pitcher"; "hurler" ];
  (* Acronyms (Table II row 6 style). *)
  add_acronym t ~acronym:"www" ~expansion:[ "world"; "wide"; "web" ];
  add_acronym t ~acronym:"xml" ~expansion:[ "extensible"; "markup"; "language" ];
  add_acronym t ~acronym:"ir" ~expansion:[ "information"; "retrieval" ];
  add_acronym t ~acronym:"ml" ~expansion:[ "machine"; "learning" ];
  add_acronym t ~acronym:"dbms" ~expansion:[ "database"; "management"; "system" ];
  add_acronym t ~acronym:"olap" ~expansion:[ "online"; "analytical"; "processing" ];
  add_acronym t ~acronym:"oltp" ~expansion:[ "online"; "transaction"; "processing" ];
  add_acronym t ~acronym:"nlp" ~expansion:[ "natural"; "language"; "processing" ];
  t
