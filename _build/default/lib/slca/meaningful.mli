(** Meaningful SLCA (Definitions 3.3 and 3.4).

    An SLCA result is meaningful iff it is a self-or-descendant of a node
    whose type is one of the inferred search-for candidates; a query needs
    refinement iff it has no meaningful SLCA over the document. *)

open Xr_xml

type t

(** [make ?config stats keywords] infers the search-for candidate list for
    the query once; the result is reused for every meaningfulness check of
    that query (original and refined queries share the search-for node,
    per Guideline 3's premise). *)
val make : ?config:Search_for.config -> Xr_index.Stats.t -> Interner.id list -> t

(** [candidates t] is the inferred candidate list (best first). *)
val candidates : t -> (Path.id * float) list

(** [is_meaningful t ~path] decides meaningfulness from a result node's
    type: some candidate type must be a prefix path of it. *)
val is_meaningful : t -> path:Path.id -> bool

(** [is_meaningful_dewey t dewey] resolves the node first; [false] for an
    unknown label. *)
val is_meaningful_dewey : t -> Dewey.t -> bool

(** [filter t slcas] keeps the meaningful results. *)
val filter : t -> Dewey.t list -> Dewey.t list

(** [compute t algorithm lists] composes an SLCA engine with the
    meaningfulness filter. *)
val compute :
  t -> (Xr_index.Inverted.posting array list -> Dewey.t list) ->
  Xr_index.Inverted.posting array list -> Dewey.t list
