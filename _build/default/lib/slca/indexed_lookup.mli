(** Indexed-Lookup-Eager SLCA (XKSearch).

    Drives on the shortest keyword list: for each of its nodes [v], the
    candidate SLCA is the deepest prefix of [v] whose subtree contains a
    witness of every other keyword, found with two binary searches per
    list (left/right closest match). Cost
    [O(|S1| * m * d * log |Smax|)] — best when one list is much shorter
    than the rest. *)

open Xr_xml

val compute : Xr_index.Inverted.posting array list -> Dewey.t list
