(** Multiway-SLCA (Sun, Chan, Goenka — reference [8] of the paper),
    anchor-based variant.

    Instead of probing every node of the shortest list, each iteration
    anchors on the *maximum* of the current cursor heads, computes one
    candidate from the closest matches around the anchor, and then skips
    every cursor past the anchor — so runs of postings that contribute to
    the same SLCA are consumed in one step.

    Completeness: every SLCA subtree contains a witness from every list,
    so the maximum of the heads can never jump past an unreported SLCA's
    subtree; anchors increase strictly and must land inside it. *)

open Xr_xml

val compute : Xr_index.Inverted.posting array list -> Dewey.t list
