(** ELCA (Exclusive LCA) semantics — the XRank-style alternative to SLCA
    from the related-work family the paper builds on (Section II).

    A node [v] is an ELCA of a query iff the subtree of [v] contains every
    keyword {e after excluding} the subtrees of v's descendants that
    already contain every keyword. Every SLCA is an ELCA; an ELCA may
    additionally sit {e above} an SLCA when it has its own independent
    witnesses — e.g. an [author] with a matching [inproceedings] child and
    also loose matching text of its own. Offered alongside the four SLCA
    engines so downstream users can pick the result semantics. *)

open Xr_xml

(** [compute lists] is the ELCA set of the conjunction of the keywords
    whose posting lists are given, in document order. *)
val compute : Xr_index.Inverted.posting array list -> Dewey.t list

(** [query alg index keywords] is the convenience form mirroring
    {!Engine.query}. *)
val query : Xr_index.Index.t -> string list -> Dewey.t list
