(** Boolean-OR relaxation — the other baseline the paper positions itself
    against (Section I: relaxing to OR "heavily relaxes the search
    intention of original queries").

    Instead of repairing the query, OR search returns nodes matching
    {e any} keyword, scored by how many distinct query keywords their
    subtree covers, IDF-weighted, with deeper (more specific) nodes
    preferred among equals. The benchmark harness grades these results
    against the refined queries' results to quantify the relaxation's
    intention loss. *)

open Xr_xml

type hit = {
  dewey : Dewey.t;
  matched : int;  (** distinct query keywords in the subtree *)
  score : float;
}

(** [query ?limit index keywords] is the Top-[limit] (default 20) OR hits,
    best first. Nodes whose subtree covers more (and rarer) keywords win;
    an ancestor is dropped in favour of a descendant covering the same
    keyword set (minimality, as in LCA-style semantics). *)
val query : ?limit:int -> Xr_index.Index.t -> string list -> hit list
