open Xr_xml
module Inverted = Xr_index.Inverted

(* Candidates arrive in document order (driver list order); a pending
   candidate is final once the next candidate is not its descendant,
   because any later candidate is even further right. *)
let iter lists f =
  if lists <> [] && not (List.exists (fun l -> Array.length l = 0) lists) then begin
    let sorted = List.sort (fun a b -> Int.compare (Array.length a) (Array.length b)) lists in
    match sorted with
    | [] -> ()
    | driver :: others ->
      let others = Array.of_list others in
      let pos = Array.make (Array.length others) 0 in
      let pending = ref None in
      let continue = ref true in
      let emit c =
        match !pending with
        | Some p when Dewey.is_prefix p c -> pending := Some c (* deeper: replaces ancestor *)
        | Some p when Dewey.is_prefix c p || Dewey.compare c p <= 0 ->
          (* an ancestor of (or not beyond) the pending candidate: a later
             driving node can map to a shallower prefix, which is never a
             new SLCA *)
          ()
        | Some p -> if f p then pending := Some c else continue := false
        | None -> pending := Some c
      in
      let i = ref 0 in
      while !continue && !i < Array.length driver do
        let v = driver.(!i) in
        incr i;
        let depth = ref (Dewey.depth v.Inverted.dewey) in
        Array.iteri
          (fun j list ->
            let n = Array.length list in
            while pos.(j) < n && Dewey.compare list.(pos.(j)).Inverted.dewey v.Inverted.dewey < 0 do
              pos.(j) <- pos.(j) + 1
            done;
            let lm = if pos.(j) > 0 then Some list.(pos.(j) - 1) else None in
            let rm = if pos.(j) < n then Some list.(pos.(j)) else None in
            depth := min !depth (Slca_common.deepest_prefix_depth v.Inverted.dewey (lm, rm)))
          others;
        if !depth >= 0 then emit (Dewey.prefix v.Inverted.dewey !depth)
      done;
      if !continue then begin
        match !pending with Some p -> ignore (f p) | None -> ()
      end
  end

let first_n lists n =
  let acc = ref [] and count = ref 0 in
  iter lists (fun d ->
      acc := d :: !acc;
      incr count;
      !count < n);
  List.rev !acc
