open Xr_xml

type algorithm = Stack | Scan_eager | Indexed_lookup | Multiway

let all = [ Stack; Scan_eager; Indexed_lookup; Multiway ]

let name = function
  | Stack -> "stack"
  | Scan_eager -> "scan-eager"
  | Indexed_lookup -> "indexed-lookup"
  | Multiway -> "multiway"

let of_name = function
  | "stack" -> Some Stack
  | "scan-eager" -> Some Scan_eager
  | "indexed-lookup" -> Some Indexed_lookup
  | "multiway" -> Some Multiway
  | _ -> None

let compute alg lists =
  match alg with
  | Stack -> Stack_slca.compute lists
  | Scan_eager -> Scan_eager.compute lists
  | Indexed_lookup -> Indexed_lookup.compute lists
  | Multiway -> Multiway.compute lists

let query alg (index : Xr_index.Index.t) keywords =
  let resolve k =
    match Doc.keyword_id index.doc k with
    | Some kw -> Xr_index.Inverted.list index.inverted kw
    | None -> [||]
  in
  (* duplicate keywords add no constraint under conjunctive semantics *)
  let distinct = List.sort_uniq String.compare (List.map Token.normalize keywords) in
  compute alg (List.map resolve distinct)
