open Xr_xml
module Inverted = Xr_index.Inverted
module Index = Xr_index.Index

(* Tags of the proper ancestors of [d] down to depth [stop] (exclusive of
   [d] itself, inclusive of the node at depth [stop]). *)
let ancestor_tags doc d ~stop =
  let rec go depth acc =
    if depth < stop then acc
    else
      let prefix = Dewey.prefix d depth in
      match Doc.find doc prefix with
      | Some node -> go (depth - 1) (node.Doc.tag :: acc)
      | None -> go (depth - 1) acc
  in
  go (Dewey.depth d - 1) []

let related doc a b =
  match (Doc.find doc a, Doc.find doc b) with
  | Some _, Some _ ->
    if Dewey.equal a b then true
    else begin
      let lca_depth = Dewey.common_prefix_len a b in
      (* path nodes between the endpoints, through the LCA, endpoints
         excluded: strict ancestors of [a] down to the LCA (inclusive)
         plus strict ancestors of [b] down to just above the LCA *)
      let side_a = ancestor_tags doc a ~stop:lca_depth in
      let side_b = ancestor_tags doc b ~stop:(lca_depth + 1) in
      (* when one endpoint is an ancestor of the other, its side is empty
         and the other side is the direct path: same rule applies *)
      let tags = side_a @ side_b in
      let seen = Hashtbl.create 8 in
      let ok = ref true in
      List.iter
        (fun tag ->
          if Hashtbl.mem seen tag then ok := false else Hashtbl.add seen tag ())
        tags;
      !ok
    end
  | _ -> false

let witness_choice ?(limit = 8) doc ~per_keyword =
  let clipped =
    List.map (fun l -> List.filteri (fun i _ -> i < limit) l) per_keyword
  in
  let rec go chosen = function
    | [] -> Some (List.rev chosen)
    | candidates :: rest ->
      let rec try_cands = function
        | [] -> None
        | c :: more ->
          if List.for_all (fun prev -> related doc prev c) chosen then begin
            match go (c :: chosen) rest with
            | Some _ as found -> found
            | None -> try_cands more
          end
          else try_cands more
      in
      try_cands candidates
  in
  if List.exists (fun l -> l = []) clipped then None else go [] clipped

let filter (index : Index.t) keywords slcas =
  let doc = index.Index.doc in
  let ids =
    List.filter_map (Doc.keyword_id doc)
      (List.sort_uniq String.compare (List.map Token.normalize keywords))
  in
  let lists = List.map (fun kw -> Inverted.list index.Index.inverted kw) ids in
  List.filter
    (fun root ->
      let per_keyword =
        List.map
          (fun list ->
            let lo, hi = Inverted.prefix_slice list root in
            Array.to_list (Array.sub list lo (hi - lo))
            |> List.map (fun (p : Inverted.posting) -> p.Inverted.dewey))
          lists
      in
      witness_choice doc ~per_keyword <> None)
    slcas
