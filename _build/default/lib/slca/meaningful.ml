open Xr_xml
module Stats = Xr_index.Stats

type t = { doc : Doc.t; candidates : (Path.id * float) list }

let make ?config stats keywords =
  { doc = Stats.doc stats; candidates = Search_for.infer ?config stats keywords }

let candidates t = t.candidates

let is_meaningful t ~path =
  List.exists
    (fun (cand, _) -> Path.is_prefix t.doc.Doc.paths ~ancestor:cand ~descendant:path)
    t.candidates

let is_meaningful_dewey t dewey =
  match Doc.path_of_dewey t.doc dewey with
  | Some path -> is_meaningful t ~path
  | None -> false

let filter t slcas = List.filter (is_meaningful_dewey t) slcas

let compute t engine lists = filter t (engine lists)
