(** Streaming SLCA: the "eager" property of XKSearch made explicit — each
    SLCA is delivered as soon as it can no longer be invalidated by a
    deeper match, so a consumer wanting only the first few results stops
    the scan early instead of materializing everything. *)

open Xr_xml

(** [iter lists f] runs the scan-eager computation, calling [f] on each
    SLCA in document order; the scan stops as soon as [f] returns
    [false]. *)
val iter : Xr_index.Inverted.posting array list -> (Dewey.t -> bool) -> unit

(** [first_n lists n] is the first [n] SLCAs in document order, visiting
    only as much of the driving list as needed. *)
val first_n : Xr_index.Inverted.posting array list -> int -> Dewey.t list
