open Xr_xml

let clip width s = if String.length s <= width then s else String.sub s 0 (width - 3) ^ "..."

(* bracket every token of [text] whose normalized form is a query keyword *)
let highlight doc query text =
  String.concat " "
    (List.map
       (fun raw ->
         let is_match =
           match Doc.keyword_id doc raw with Some id -> List.mem id query | None -> false
         in
         if is_match then "[" ^ raw ^ "]" else raw)
       (Token.tokenize text))

let of_result doc ~query ?(max_fragments = 3) ?(width = 60) dewey =
  match Doc.subtree doc dewey with
  | None -> ""
  | Some subtree ->
    let fragments = ref [] in
    let fallback = ref None in
    let rec walk (e : Tree.t) =
      let text = Tree.text e in
      if String.length (String.trim text) > 0 then begin
        if !fallback = None then fallback := Some (e.Tree.tag, text);
        let tokens = Token.tokenize text in
        let hit =
          List.exists
            (fun tok ->
              match Doc.keyword_id doc tok with Some id -> List.mem id query | None -> false)
            tokens
        in
        if hit then fragments := (e.Tree.tag, text) :: !fragments
      end;
      List.iter walk (Tree.element_children e)
    in
    walk subtree;
    let chosen =
      match List.rev !fragments with
      | [] -> ( match !fallback with Some f -> [ f ] | None -> [])
      | l -> List.filteri (fun i _ -> i < max_fragments) l
    in
    String.concat " | "
      (List.map
         (fun (tag, text) -> Printf.sprintf "%s: %s" tag (clip width (highlight doc query text)))
         chosen)
