open Xr_xml
module Stats = Xr_index.Stats

type config = {
  reduction : float;
  threshold : float;
  max_candidates : int;
  include_root : bool;
  min_instances : int;
}

let default_config =
  {
    reduction = 0.8;
    threshold = 0.8;
    max_candidates = 3;
    include_root = false;
    min_instances = 2;
  }

let confidence ?(config = default_config) stats keywords path =
  let doc = Stats.doc stats in
  let sum =
    List.fold_left (fun acc kw -> acc + Stats.df stats ~path ~kw) 0 keywords
  in
  log (1. +. float_of_int sum) *. (config.reduction ** float_of_int (Path.depth doc.Doc.paths path))

let infer ?(config = default_config) stats keywords =
  let doc = Stats.doc stats in
  let collect ~respect_min =
    let scored = ref [] in
    Path.iter
      (fun path ->
        if
          (config.include_root || path <> doc.Doc.root_path)
          && ((not respect_min) || Stats.node_count stats path >= config.min_instances)
        then begin
          let c = confidence ~config stats keywords path in
          if c > 0. then scored := (path, c) :: !scored
        end)
      doc.Doc.paths;
    !scored
  in
  let scored =
    match collect ~respect_min:true with [] -> collect ~respect_min:false | l -> l
  in
  let scored = ref scored in
  let sorted =
    List.sort
      (fun (p1, c1) (p2, c2) ->
        match Float.compare c2 c1 with 0 -> Int.compare p1 p2 | c -> c)
      !scored
  in
  match sorted with
  | [] -> []
  | (_, best) :: _ ->
    let cutoff = config.threshold *. best in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | (p, c) :: rest -> if c >= cutoff then (p, c) :: take (n - 1) rest else []
    in
    take config.max_candidates sorted
