(** Uniform front door over the four SLCA algorithms — the pluggable
    "existing SLCA computation method" of the paper's Lemma 3. *)

open Xr_xml

type algorithm =
  | Stack  (** sort-merge stack, the paper's [stack-slca] *)
  | Scan_eager  (** XKSearch scan-eager, the paper's [scan-slca] *)
  | Indexed_lookup  (** XKSearch indexed-lookup-eager *)
  | Multiway  (** Multiway-SLCA, anchor-based *)

val all : algorithm list

val name : algorithm -> string

(** [of_name s] inverts {!name}. *)
val of_name : string -> algorithm option

(** [compute alg lists] is the SLCA set (document order) of the
    conjunction of the keywords whose posting lists are given. *)
val compute : algorithm -> Xr_index.Inverted.posting array list -> Dewey.t list

(** [query alg index keywords] resolves keywords against the document and
    computes SLCAs; a keyword absent from the document yields []. *)
val query : algorithm -> Xr_index.Index.t -> string list -> Dewey.t list
