(** XSEarch's interconnection relation (reference [2] of the paper,
    described verbatim in its Section II): two match nodes are
    {e interconnected} iff the path between them through their LCA
    contains no two distinct nodes with the same tag name, the endpoints
    excluded.

    Intuition: a path that passes through two different [author] nodes
    connects matches belonging to two different entities, so the pair is
    semantically unrelated even though an LCA exists. Offered as a result
    filter: an SLCA whose witnesses cannot be chosen pairwise
    interconnected is demoted. *)

open Xr_xml

(** [related doc a b] is the interconnection test for two element nodes
    (false if either label is unknown). A node is always related to
    itself and to its ancestors/descendants ("through the LCA" the path
    is one-sided). *)
val related : Doc.t -> Dewey.t -> Dewey.t -> bool

(** [witness_choice doc ~per_keyword ~root] searches for one witness per
    keyword — all inside the subtree of [root], pairwise interconnected.
    [per_keyword] lists each keyword's candidate nodes within the
    subtree. Bounded backtracking (the candidate lists are clipped to
    [limit], default 8); [None] when no choice works. *)
val witness_choice :
  ?limit:int -> Doc.t -> per_keyword:Dewey.t list list -> Dewey.t list option

(** [filter index keywords slcas] keeps the SLCAs whose keyword witnesses
    can be chosen pairwise interconnected — the XSEarch-style
    tightening of an SLCA result list. *)
val filter : Xr_index.Index.t -> string list -> Dewey.t list -> Dewey.t list
