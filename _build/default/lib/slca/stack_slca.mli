(** Stack-based SLCA computation (the sort-merge stack algorithm of
    XKSearch, reference [3] of the paper).

    All keyword lists are merged into one document-ordered stream; a stack
    of Dewey components carries, per entry, the set of keywords witnessed
    in the subtree below it. When an entry is popped with every keyword
    witnessed and no SLCA already reported below it, its node is an SLCA. *)

open Xr_xml

(** [compute lists] is the SLCA set of the conjunction of the keywords
    whose posting lists are given, in document order. Empty if any list is
    empty. *)
val compute : Xr_index.Inverted.posting array list -> Dewey.t list
