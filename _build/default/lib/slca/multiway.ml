open Xr_xml
module Inverted = Xr_index.Inverted

let compute lists =
  if lists = [] || List.exists (fun l -> Array.length l = 0) lists then []
  else begin
    let lists = Array.of_list lists in
    let m = Array.length lists in
    let pos = Array.make m 0 in
    let cands = ref [] in
    let running = ref true in
    while !running do
      (* anchor = maximum of the current heads *)
      let anchor = ref None in
      for i = 0 to m - 1 do
        if pos.(i) >= Array.length lists.(i) then running := false
        else begin
          let d = lists.(i).(pos.(i)).Inverted.dewey in
          match !anchor with
          | None -> anchor := Some d
          | Some a -> if Dewey.compare d a > 0 then anchor := Some d
        end
      done;
      if !running then begin
        match !anchor with
        | None -> running := false
        | Some a ->
          let depth = ref (Dewey.depth a) in
          for i = 0 to m - 1 do
            depth := min !depth (Slca_common.deepest_prefix_depth a (Slca_common.closest lists.(i) 0 a))
          done;
          if !depth >= 0 then cands := Dewey.prefix a !depth :: !cands;
          (* skip every cursor past the anchor *)
          for i = 0 to m - 1 do
            let list = lists.(i) in
            let lo = ref pos.(i) and hi = ref (Array.length list) in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if Dewey.compare list.(mid).Inverted.dewey a <= 0 then lo := mid + 1 else hi := mid
            done;
            pos.(i) <- !lo
          done
      end
    done;
    Slca_common.prune_non_smallest !cands
  end
