open Xr_xml
module Inverted = Xr_index.Inverted
module Index = Xr_index.Index

type hit = {
  dewey : Dewey.t;
  matched : int;
  score : float;
}

(* an entry remembers its children's witness sets: if one child already
   covered everything the entry covers, the entry adds no specificity and
   is not reported *)
type entry = { witness : bool array; mutable children_witness : bool array list }

let query ?(limit = 20) (index : Index.t) keywords =
  let doc = index.Index.doc in
  let distinct = List.sort_uniq String.compare (List.map Token.normalize keywords) in
  let ids = List.filter_map (Doc.keyword_id doc) distinct in
  let lists = List.map (fun kw -> Inverted.list index.Index.inverted kw) ids in
  let m = List.length lists in
  if m = 0 then []
  else begin
    (* IDF per keyword from its posting-list length *)
    let n = float_of_int (max 1 (Doc.node_count doc)) in
    let idf =
      Array.of_list
        (List.map (fun l -> log (n /. (1. +. float_of_int (Array.length l))) +. 0.1) lists)
    in
    let pos = Array.make m 0 in
    let lists = Array.of_list lists in
    let hits = ref [] in
    let stack = ref [ { witness = Array.make m false; children_witness = [] } ] in
    let path = ref [||] in
    let consider e dewey =
      let matched = Array.fold_left (fun a w -> if w then a + 1 else a) 0 e.witness in
      let dominated =
        List.exists (fun cw -> cw = e.witness) e.children_witness
      in
      if matched > 0 && not dominated then begin
        let score = ref 0. in
        Array.iteri (fun i w -> if w then score := !score +. idf.(i)) e.witness;
        (* mild specificity bonus for deeper nodes *)
        let score = !score *. (1. +. (0.02 *. float_of_int (Dewey.depth dewey))) in
        hits := { dewey; matched; score } :: !hits
      end
    in
    let pop_to target_len =
      while Array.length !path > target_len do
        match !stack with
        | e :: (parent :: _ as rest) ->
          consider e !path;
          parent.children_witness <- Array.copy e.witness :: parent.children_witness;
          Array.iteri (fun i w -> if w then parent.witness.(i) <- true) e.witness;
          stack := rest;
          path := Array.sub !path 0 (Array.length !path - 1)
        | _ -> assert false
      done
    in
    let smallest () =
      let best = ref None in
      Array.iteri
        (fun i list ->
          if pos.(i) < Array.length list then begin
            let d = list.(pos.(i)).Inverted.dewey in
            match !best with
            | None -> best := Some (i, d)
            | Some (_, d') -> if Dewey.compare d d' < 0 then best := Some (i, d)
          end)
        lists;
      !best
    in
    let rec loop () =
      match smallest () with
      | None -> ()
      | Some (i, dewey) ->
        pos.(i) <- pos.(i) + 1;
        let lcp = Dewey.common_prefix_len dewey !path in
        pop_to lcp;
        for j = lcp to Array.length dewey - 1 do
          stack := { witness = Array.make m false; children_witness = [] } :: !stack;
          path := Dewey.child !path dewey.(j)
        done;
        (match !stack with
        | top :: _ -> top.witness.(i) <- true
        | [] -> assert false);
        loop ()
    in
    loop ();
    pop_to 0;
    (match !stack with [ root ] -> consider root [||] | _ -> assert false);
    List.stable_sort
      (fun a b ->
        match Float.compare b.score a.score with
        | 0 -> Dewey.compare a.dewey b.dewey
        | c -> c)
      !hits
    |> List.filteri (fun i _ -> i < limit)
  end
