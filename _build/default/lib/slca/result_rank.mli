(** Relevance-oriented ranking of SLCA results — the XML TF*IDF of the
    authors' companion work (reference [6] of the paper), which the paper
    uses for its search-for statistics and cites for result ranking.

    A result subtree [r] of type [T] scores
    [sum_k ln(1 + tf(k, r)) * ln(N_T / (1 + f_k^T)) / ln(1 + |r|)]:
    term-frequency of each query keyword inside the subtree, dampened,
    weighted by the keyword's inverse document frequency among [T]-typed
    subtrees, normalized by subtree size so small, focused results are not
    drowned by large ones. *)

open Xr_xml

(** [score stats ~query dewey] is the relevance of one result. Unknown
    labels score 0. *)
val score : Xr_index.Stats.t -> query:Interner.id list -> Dewey.t -> float

(** [rank stats ~query slcas] sorts results best-first (ties: document
    order), returning scores alongside. *)
val rank :
  Xr_index.Stats.t -> query:Interner.id list -> Dewey.t list -> (Dewey.t * float) list
