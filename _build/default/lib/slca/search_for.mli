(** Search-for node inference (Section III-A, Formula 1).

    The confidence of node type [T] being the target a query searches for
    is [C_for(T,Q) = ln(1 + sum_k f_k^T) * r^depth(T)] with reduction
    factor [r in (0,1)]: deep types are discounted, types whose subtrees
    cover many query keywords are promoted. The candidate list [L] keeps
    the non-root types whose confidence is within a fraction [tau] of the
    best. *)

open Xr_xml

type config = {
  reduction : float;  (** [r] of Formula 1; default 0.8 *)
  threshold : float;  (** keep [T] with confidence >= threshold * max; default 0.8 *)
  max_candidates : int;  (** cap on [|L|]; default 3 *)
  include_root : bool;  (** admit the document-root type; default false *)
  min_instances : int;
      (** exclude types with fewer than this many nodes (default 2): a
          singleton type — e.g. a section container holding everything of
          one kind — is statistically indistinguishable from the root,
          which the paper already calls "a typical meaningless SLCA".
          When no type qualifies, the filter is dropped rather than
          returning nothing. *)
}

val default_config : config

(** [infer ?config stats keywords] is the candidate list [L]: node types
    with their confidence, best first. Keywords absent from the document
    contribute zero. *)
val infer :
  ?config:config -> Xr_index.Stats.t -> Interner.id list -> (Path.id * float) list

(** [confidence ?config stats keywords path] is [C_for(path, Q)]. *)
val confidence : ?config:config -> Xr_index.Stats.t -> Interner.id list -> Path.id -> float
