open Xr_xml
module Inverted = Xr_index.Inverted
module Cursor = Xr_index.Cursor

(* One entry per component of the current path (plus a root sentinel);
   [witness.(i)] records that keyword [i] occurs in the subtree below. *)
type entry = {
  witness : bool array;
  mutable slca_below : bool;
}

let compute lists =
  let m = List.length lists in
  if m = 0 || List.exists (fun l -> Array.length l = 0) lists then []
  else begin
    let cursors = Array.of_list (List.map Cursor.make lists) in
    let results = ref [] in
    (* The stack models the path of the last visited node: entry [i] (from
       the bottom, above the sentinel) carries component [dewey.(i-1)]. *)
    let stack = ref [ { witness = Array.make m false; slca_below = false } ] in
    let path = ref [||] in
    let all_true w = Array.for_all Fun.id w in
    let pop_to target_len =
      while Array.length !path > target_len do
        match !stack with
        | e :: (parent :: _ as rest) ->
          let emitted = all_true e.witness && not e.slca_below in
          if emitted then results := !path :: !results;
          Array.iteri (fun i w -> if w then parent.witness.(i) <- true) e.witness;
          if e.slca_below || emitted then parent.slca_below <- true;
          stack := rest;
          path := Array.sub !path 0 (Array.length !path - 1)
        | _ -> assert false
      done
    in
    let next_smallest () =
      let best = ref (-1) in
      Array.iteri
        (fun i c ->
          match Cursor.peek c with
          | None -> ()
          | Some p ->
            let better =
              match !best with
              | -1 -> true
              | j -> (
                match Cursor.peek cursors.(j) with
                | Some q -> Dewey.compare p.Inverted.dewey q.Inverted.dewey < 0
                | None -> true)
            in
            if better then best := i)
        cursors;
      if !best < 0 then None
      else
        match Cursor.peek cursors.(!best) with
        | Some p ->
          Cursor.advance cursors.(!best);
          Some (p.Inverted.dewey, !best)
        | None -> None
    in
    let rec loop () =
      match next_smallest () with
      | None -> ()
      | Some (dewey, kw) ->
        let lcp = Dewey.common_prefix_len dewey !path in
        pop_to lcp;
        for i = lcp to Array.length dewey - 1 do
          stack := { witness = Array.make m false; slca_below = false } :: !stack;
          path := Dewey.child !path dewey.(i)
        done;
        (match !stack with
        | top :: _ -> top.witness.(kw) <- true
        | [] -> assert false);
        loop ()
    in
    loop ();
    pop_to 0;
    (* Finally consider the root sentinel itself. *)
    (match !stack with
    | [ root ] -> if all_true root.witness && not root.slca_below then results := [||] :: !results
    | _ -> assert false);
    List.rev !results
  end
