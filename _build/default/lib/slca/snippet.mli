(** Result snippets: a one-line, keyword-highlighted summary of a result
    subtree, the way a search UI (like the paper's XRefine prototype demo)
    would present an SLCA hit. *)

open Xr_xml

(** [of_result doc ~query ?max_fragments ?width dewey] renders e.g.
    ["title: efficient [keyword] [search] on xml | year: 2003"] — one
    fragment per element whose own text matches a query keyword (matched
    keywords bracketed), at most [max_fragments] (default 3), each clipped
    to [width] characters (default 60). Falls back to the subtree's first
    text when nothing matches; [""] for an unknown label. *)
val of_result :
  Doc.t -> query:Interner.id list -> ?max_fragments:int -> ?width:int -> Dewey.t -> string
