open Xr_xml
module Inverted = Xr_index.Inverted

let candidates_of_driver driver others =
  let cands = ref [] in
  Array.iter
    (fun (v : Inverted.posting) ->
      let depth =
        List.fold_left
          (fun acc list ->
            min acc (Slca_common.deepest_prefix_depth v.dewey (Slca_common.closest list 0 v.dewey)))
          (Dewey.depth v.dewey) others
      in
      if depth >= 0 then cands := Dewey.prefix v.dewey depth :: !cands)
    driver;
  !cands

let compute lists =
  if lists = [] || List.exists (fun l -> Array.length l = 0) lists then []
  else begin
    let sorted = List.sort (fun a b -> Int.compare (Array.length a) (Array.length b)) lists in
    match sorted with
    | driver :: others -> Slca_common.prune_non_smallest (candidates_of_driver driver others)
    | [] -> []
  end
