open Xr_xml
module Inverted = Xr_index.Inverted
module Cursor = Xr_index.Cursor

(* Same merged-stream stack as {!Stack_slca}, with the ELCA twist. Each
   entry tracks two witness sets: [total] — every keyword occurring in
   the subtree — and [open_w] — keywords with an occurrence that is not
   inside an all-keyword-containing descendant. A popped entry whose
   [total] is complete is such a container: it is an ELCA iff its
   [open_w] is also complete, and either way none of its occurrences are
   visible to ancestors ([total] still propagates, for containment). *)

type entry = { total : bool array; open_w : bool array }

let compute lists =
  let m = List.length lists in
  if m = 0 || List.exists (fun l -> Array.length l = 0) lists then []
  else begin
    let cursors = Array.of_list (List.map Cursor.make lists) in
    let results = ref [] in
    let fresh () = { total = Array.make m false; open_w = Array.make m false } in
    let stack = ref [ fresh () ] in
    let path = ref [||] in
    let all_true w = Array.for_all Fun.id w in
    let pop_to target_len =
      while Array.length !path > target_len do
        match !stack with
        | e :: (parent :: _ as rest) ->
          Array.iteri (fun i w -> if w then parent.total.(i) <- true) e.total;
          if all_true e.total then begin
            if all_true e.open_w then results := !path :: !results
          end
          else Array.iteri (fun i w -> if w then parent.open_w.(i) <- true) e.open_w;
          stack := rest;
          path := Array.sub !path 0 (Array.length !path - 1)
        | _ -> assert false
      done
    in
    let next_smallest () =
      let best = ref (-1) in
      Array.iteri
        (fun i c ->
          match Cursor.peek c with
          | None -> ()
          | Some p ->
            let better =
              match !best with
              | -1 -> true
              | j -> (
                match Cursor.peek cursors.(j) with
                | Some q -> Dewey.compare p.Inverted.dewey q.Inverted.dewey < 0
                | None -> true)
            in
            if better then best := i)
        cursors;
      if !best < 0 then None
      else
        match Cursor.peek cursors.(!best) with
        | Some p ->
          Cursor.advance cursors.(!best);
          Some (p.Inverted.dewey, !best)
        | None -> None
    in
    let rec loop () =
      match next_smallest () with
      | None -> ()
      | Some (dewey, kw) ->
        let lcp = Dewey.common_prefix_len dewey !path in
        pop_to lcp;
        for i = lcp to Array.length dewey - 1 do
          stack := fresh () :: !stack;
          path := Dewey.child !path dewey.(i)
        done;
        (match !stack with
        | top :: _ ->
          top.total.(kw) <- true;
          top.open_w.(kw) <- true
        | [] -> assert false);
        loop ()
    in
    loop ();
    pop_to 0;
    (match !stack with
    | [ root ] -> if all_true root.total && all_true root.open_w then results := [||] :: !results
    | _ -> assert false);
    (* ELCAs may nest (unlike SLCAs), so pop order is postorder; restore
       document order *)
    List.sort Dewey.compare !results
  end

let query (index : Xr_index.Index.t) keywords =
  let resolve k =
    match Doc.keyword_id index.Xr_index.Index.doc k with
    | Some kw -> Inverted.list index.Xr_index.Index.inverted kw
    | None -> [||]
  in
  let distinct = List.sort_uniq String.compare (List.map Token.normalize keywords) in
  compute (List.map resolve distinct)
