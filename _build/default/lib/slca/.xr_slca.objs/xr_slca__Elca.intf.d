lib/slca/elca.mli: Dewey Xr_index Xr_xml
