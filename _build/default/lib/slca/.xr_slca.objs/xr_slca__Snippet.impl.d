lib/slca/snippet.ml: Doc List Printf String Token Tree Xr_xml
