lib/slca/indexed_lookup.mli: Dewey Xr_index Xr_xml
