lib/slca/search_for.mli: Interner Path Xr_index Xr_xml
