lib/slca/search_for.ml: Doc Float Int List Path Xr_index Xr_xml
