lib/slca/interconnection.ml: Array Dewey Doc Hashtbl List String Token Xr_index Xr_xml
