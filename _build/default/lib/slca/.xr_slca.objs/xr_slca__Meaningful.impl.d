lib/slca/meaningful.ml: Doc List Path Search_for Xr_index Xr_xml
