lib/slca/snippet.mli: Dewey Doc Interner Xr_xml
