lib/slca/engine.mli: Dewey Xr_index Xr_xml
