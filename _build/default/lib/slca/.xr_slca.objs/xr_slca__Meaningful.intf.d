lib/slca/meaningful.mli: Dewey Interner Path Search_for Xr_index Xr_xml
