lib/slca/multiway.mli: Dewey Xr_index Xr_xml
