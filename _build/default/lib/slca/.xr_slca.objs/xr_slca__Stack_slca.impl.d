lib/slca/stack_slca.ml: Array Dewey Fun List Xr_index Xr_xml
