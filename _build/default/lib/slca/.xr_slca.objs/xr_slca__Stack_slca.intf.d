lib/slca/stack_slca.mli: Dewey Xr_index Xr_xml
