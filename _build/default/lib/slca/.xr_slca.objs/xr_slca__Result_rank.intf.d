lib/slca/result_rank.mli: Dewey Interner Xr_index Xr_xml
