lib/slca/stream.ml: Array Dewey Int List Slca_common Xr_index Xr_xml
