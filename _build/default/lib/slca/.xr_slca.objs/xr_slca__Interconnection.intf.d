lib/slca/interconnection.mli: Dewey Doc Xr_index Xr_xml
