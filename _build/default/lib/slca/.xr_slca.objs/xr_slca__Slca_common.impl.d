lib/slca/slca_common.ml: Array Dewey List Xr_index Xr_xml
