lib/slca/result_rank.ml: Array Dewey Doc Float List Xr_index Xr_xml
