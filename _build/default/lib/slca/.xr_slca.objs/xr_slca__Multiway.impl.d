lib/slca/multiway.ml: Array Dewey List Slca_common Xr_index Xr_xml
