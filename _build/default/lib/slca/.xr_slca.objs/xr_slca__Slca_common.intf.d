lib/slca/slca_common.mli: Dewey Xr_index Xr_xml
