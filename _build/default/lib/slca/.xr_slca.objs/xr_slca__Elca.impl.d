lib/slca/elca.ml: Array Dewey Doc Fun List String Token Xr_index Xr_xml
