lib/slca/scan_eager.mli: Dewey Xr_index Xr_xml
