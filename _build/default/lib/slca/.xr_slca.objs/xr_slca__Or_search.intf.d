lib/slca/or_search.mli: Dewey Xr_index Xr_xml
