lib/slca/engine.ml: Doc Indexed_lookup List Multiway Scan_eager Stack_slca String Token Xr_index Xr_xml
