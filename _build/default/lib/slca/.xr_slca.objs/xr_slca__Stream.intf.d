lib/slca/stream.mli: Dewey Xr_index Xr_xml
