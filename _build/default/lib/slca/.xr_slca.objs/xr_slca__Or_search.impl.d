lib/slca/or_search.ml: Array Dewey Doc Float List String Token Xr_index Xr_xml
