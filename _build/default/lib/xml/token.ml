let is_alnum c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let lower c = if c >= 'A' && c <= 'Z' then Char.chr (Char.code c + 32) else c

let tokenize s =
  let n = String.length s in
  let acc = ref [] in
  let b = Buffer.create 16 in
  let flush () =
    if Buffer.length b > 0 then begin
      acc := Buffer.contents b :: !acc;
      Buffer.clear b
    end
  in
  for i = 0 to n - 1 do
    let c = s.[i] in
    if is_alnum c then Buffer.add_char b (lower c) else flush ()
  done;
  flush ();
  List.rev !acc

let normalize s =
  let b = Buffer.create (String.length s) in
  String.iter (fun c -> if is_alnum c then Buffer.add_char b (lower c)) s;
  Buffer.contents b

let is_keyword s =
  String.length s > 0 && String.for_all (fun c -> is_alnum c && c = lower c) s
