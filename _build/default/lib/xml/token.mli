(** Keyword tokenization shared by indexing and query parsing.

    A keyword is a maximal run of ASCII letters or digits, lowercased.
    Both tag names and text values are tokenized this way, so a query
    keyword can match either (as required by the paper's data model). *)

(** [tokenize s] is the list of keywords of [s], in order, duplicates
    preserved. *)
val tokenize : string -> string list

(** [normalize s] lowercases [s] and strips non-alphanumeric characters;
    the identity on well-formed keywords. Returns [""] if nothing
    survives. *)
val normalize : string -> string

(** [is_keyword s] is true iff [s] is a single non-empty normalized
    keyword. *)
val is_keyword : string -> bool
