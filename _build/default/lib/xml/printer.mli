(** XML serialization (inverse of {!Parser}). *)

(** [to_string ?indent t] renders [t] as an XML document. With
    [~indent:true] (default) elements are pretty-printed two spaces per
    level; text-only elements stay on one line. *)
val to_string : ?indent:bool -> Tree.t -> string

(** [to_file ?indent path t] writes the document to [path]. *)
val to_file : ?indent:bool -> string -> Tree.t -> unit

(** [escape s] escapes the five XML special characters for use in character data or attribute
    values. *)
val escape : string -> string
