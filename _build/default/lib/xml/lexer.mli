(** Hand-written XML tokenizer.

    Covers the subset of XML 1.0 needed for data-oriented documents:
    element tags with attributes, character data, the five predefined
    entities plus numeric character references, comments, CDATA sections,
    processing instructions and the XML declaration (both skipped), and a
    DOCTYPE declaration without an internal subset (skipped). *)

type token =
  | Open_tag of string * (string * string) list  (** [<tag a="v" ...>] *)
  | Open_close_tag of string * (string * string) list  (** [<tag ... />] *)
  | Close_tag of string  (** [</tag>] *)
  | Chars of string  (** character data, entities resolved *)
  | Eof

exception Error of int * string
(** [Error (pos, msg)]: lexical error at byte offset [pos]. *)

type t

val of_string : string -> t

(** [next t] consumes and returns the next token. Whitespace-only
    character data between markup is skipped. *)
val next : t -> token

(** [pos t] is the current byte offset, for error reporting. *)
val pos : t -> int
