(** A small XPath-like path language over compiled documents — enough to
    inspect corpora and express node types (which are prefix paths,
    Definition 3.1) from the CLI and tests:

    {v
    /bib/author/name          child steps from the root
    //title                   descendant step: any depth
    /dblp//author             mixed
    /site/regions/*           wildcard tag
    //inproceedings[xml]      subtree-keyword filter
    v} *)

type t

(** [parse s] compiles a path expression.
    Returns [Error msg] on syntax errors. *)
val parse : string -> (t, string) result

(** [parse_exn s] is {!parse}. @raise Invalid_argument on syntax errors. *)
val parse_exn : string -> t

(** [to_string p] renders the compiled path back. *)
val to_string : t -> string

(** [eval doc p] is every element node whose tag path matches [p] (and
    whose subtree contains the filter keyword, if one was given), in
    document order. *)
val eval : Doc.t -> t -> Dewey.t list

(** [matches doc p dewey] tests one node. *)
val matches : Doc.t -> t -> Dewey.t -> bool
