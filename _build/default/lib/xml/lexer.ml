type token =
  | Open_tag of string * (string * string) list
  | Open_close_tag of string * (string * string) list
  | Close_tag of string
  | Chars of string
  | Eof

exception Error of int * string

type t = { src : string; mutable i : int }

let of_string src = { src; i = 0 }

let pos t = t.i

let err t msg = raise (Error (t.i, msg))

let eof t = t.i >= String.length t.src

let peek t = t.src.[t.i]

let advance t = t.i <- t.i + 1

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let skip_spaces t =
  while (not (eof t)) && is_space (peek t) do
    advance t
  done

let read_name t =
  if eof t || not (is_name_start (peek t)) then err t "expected a name";
  let start = t.i in
  while (not (eof t)) && is_name_char (peek t) do
    advance t
  done;
  String.sub t.src start (t.i - start)

(* Resolve an entity reference; [t.i] points just after '&'. *)
let read_entity t =
  let start = t.i in
  let limit = min (String.length t.src) (t.i + 12) in
  let rec find j =
    if j >= limit then err t "unterminated entity reference"
    else if t.src.[j] = ';' then j
    else find (j + 1)
  in
  let semi = find start in
  let body = String.sub t.src start (semi - start) in
  t.i <- semi + 1;
  match body with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
    if String.length body > 1 && body.[0] = '#' then begin
      let code =
        if body.[1] = 'x' || body.[1] = 'X' then
          int_of_string_opt ("0x" ^ String.sub body 2 (String.length body - 2))
        else int_of_string_opt (String.sub body 1 (String.length body - 1))
      in
      match code with
      | Some c when c >= 0 && c < 128 -> String.make 1 (Char.chr c)
      | Some _ -> "?" (* non-ASCII code points degrade to '?' *)
      | None -> err t ("bad character reference &" ^ body ^ ";")
    end
    else err t ("unknown entity &" ^ body ^ ";")

let read_quoted t =
  if eof t then err t "expected attribute value";
  let quote = peek t in
  if quote <> '"' && quote <> '\'' then err t "attribute value must be quoted";
  advance t;
  let b = Buffer.create 16 in
  let rec go () =
    if eof t then err t "unterminated attribute value";
    let c = peek t in
    if c = quote then advance t
    else if c = '&' then begin
      advance t;
      Buffer.add_string b (read_entity t);
      go ()
    end
    else begin
      Buffer.add_char b c;
      advance t;
      go ()
    end
  in
  go ();
  Buffer.contents b

let read_attrs t =
  let rec go acc =
    skip_spaces t;
    if eof t then err t "unterminated tag"
    else
      match peek t with
      | '>' | '/' | '?' -> List.rev acc
      | _ ->
        let name = read_name t in
        skip_spaces t;
        if eof t || peek t <> '=' then err t "expected '=' after attribute name";
        advance t;
        skip_spaces t;
        let value = read_quoted t in
        go ((name, value) :: acc)
  in
  go []

let expect t c =
  if eof t || peek t <> c then err t (Printf.sprintf "expected '%c'" c);
  advance t

(* Skip until the closing [stop] string; [t.i] points inside the construct. *)
let skip_until t stop =
  let n = String.length stop in
  let len = String.length t.src in
  let rec go i =
    if i + n > len then err t ("unterminated construct, expected " ^ stop)
    else if String.sub t.src i n = stop then t.i <- i + n
    else go (i + 1)
  in
  go t.i

let read_chars t =
  let b = Buffer.create 64 in
  let rec go () =
    if eof t then ()
    else
      match peek t with
      | '<' ->
        (* CDATA sections continue character data. *)
        if
          t.i + 9 <= String.length t.src
          && String.sub t.src t.i 9 = "<![CDATA["
        then begin
          t.i <- t.i + 9;
          let start = t.i in
          skip_until t "]]>";
          Buffer.add_string b (String.sub t.src start (t.i - 3 - start));
          go ()
        end
      | '&' ->
        advance t;
        Buffer.add_string b (read_entity t);
        go ()
      | c ->
        Buffer.add_char b c;
        advance t;
        go ()
  in
  go ();
  Buffer.contents b

let is_blank s = String.for_all is_space s

let rec next t =
  if eof t then Eof
  else if peek t <> '<' then begin
    let s = read_chars t in
    if is_blank s then next t else Chars s
  end
  else begin
    (* markup *)
    if t.i + 9 <= String.length t.src && String.sub t.src t.i 9 = "<![CDATA[" then begin
      let s = read_chars t in
      if is_blank s then next t else Chars s
    end
    else begin
      advance t;
      if eof t then err t "unterminated markup";
      match peek t with
      | '?' ->
        skip_until t "?>";
        next t
      | '!' ->
        advance t;
        if t.i + 2 <= String.length t.src && String.sub t.src t.i 2 = "--" then begin
          t.i <- t.i + 2;
          skip_until t "-->";
          next t
        end
        else begin
          (* DOCTYPE (no internal subset) *)
          skip_until t ">";
          next t
        end
      | '/' ->
        advance t;
        let name = read_name t in
        skip_spaces t;
        expect t '>';
        Close_tag name
      | _ ->
        let name = read_name t in
        let attrs = read_attrs t in
        if eof t then err t "unterminated tag"
        else if peek t = '/' then begin
          advance t;
          expect t '>';
          Open_close_tag (name, attrs)
        end
        else begin
          expect t '>';
          Open_tag (name, attrs)
        end
    end
  end
