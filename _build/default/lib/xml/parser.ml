exception Error of int * string

(* Parse the children of the currently open element [tag], until its close
   tag. Returns children in document order. *)
let rec parse_children lx tag =
  let rec go acc =
    match Lexer.next lx with
    | Lexer.Eof -> raise (Error (Lexer.pos lx, "unexpected end of input inside <" ^ tag ^ ">"))
    | Lexer.Close_tag name ->
      if String.equal name tag then List.rev acc
      else
        raise
          (Error (Lexer.pos lx, Printf.sprintf "mismatched close tag </%s> inside <%s>" name tag))
    | Lexer.Chars s -> go (Tree.Text s :: acc)
    | Lexer.Open_close_tag (name, attrs) -> go (Tree.Elem (Tree.elem ~attrs name []) :: acc)
    | Lexer.Open_tag (name, attrs) ->
      let children = parse_children lx name in
      go (Tree.Elem (Tree.elem ~attrs name children) :: acc)
  in
  go []

let parse_string s =
  let lx = Lexer.of_string s in
  try
    let root =
      match Lexer.next lx with
      | Lexer.Open_tag (name, attrs) -> Tree.elem ~attrs name (parse_children lx name)
      | Lexer.Open_close_tag (name, attrs) -> Tree.elem ~attrs name []
      | Lexer.Chars _ -> raise (Error (Lexer.pos lx, "character data before root element"))
      | Lexer.Close_tag _ -> raise (Error (Lexer.pos lx, "close tag before root element"))
      | Lexer.Eof -> raise (Error (Lexer.pos lx, "empty document"))
    in
    (match Lexer.next lx with
    | Lexer.Eof -> ()
    | _ -> raise (Error (Lexer.pos lx, "content after root element")));
    root
  with Lexer.Error (pos, msg) -> raise (Error (pos, msg))

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_string s
