type axis = Child | Descendant

type step = { axis : axis; tag : string option (* None = wildcard *) }

type t = { steps : step list; filter : string option }

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '-'

let parse s =
  let n = String.length s in
  let rec steps i acc =
    if i >= n then Ok (List.rev acc, None)
    else if s.[i] = '[' then begin
      match String.index_from_opt s i ']' with
      | Some j when j = n - 1 ->
        let kw = Token.normalize (String.sub s (i + 1) (j - i - 1)) in
        if kw = "" then Error "empty filter keyword"
        else Ok (List.rev acc, Some kw)
      | Some _ -> Error "filter must end the expression"
      | None -> Error "unterminated filter"
    end
    else if s.[i] <> '/' then Error (Printf.sprintf "expected '/' at position %d" i)
    else begin
      let axis, j = if i + 1 < n && s.[i + 1] = '/' then (Descendant, i + 2) else (Child, i + 1) in
      if j < n && s.[j] = '*' then steps (j + 1) ({ axis; tag = None } :: acc)
      else begin
        let k = ref j in
        while !k < n && is_name_char s.[!k] do
          incr k
        done;
        if !k = j then Error (Printf.sprintf "expected a tag name at position %d" j)
        else steps !k ({ axis; tag = Some (String.sub s j (!k - j)) } :: acc)
      end
    end
  in
  if n = 0 then Error "empty path"
  else
    match steps 0 [] with
    | Error _ as e -> e
    | Ok ([], _) -> Error "empty path"
    | Ok (steps, filter) -> Ok { steps; filter }

let parse_exn s =
  match parse s with Ok p -> p | Error msg -> invalid_arg ("Xpath.parse: " ^ msg)

let to_string p =
  let b = Buffer.create 32 in
  List.iter
    (fun { axis; tag } ->
      Buffer.add_string b (match axis with Child -> "/" | Descendant -> "//");
      Buffer.add_string b (match tag with Some t -> t | None -> "*"))
    p.steps;
  (match p.filter with
  | Some kw ->
    Buffer.add_char b '[';
    Buffer.add_string b kw;
    Buffer.add_char b ']'
  | None -> ());
  Buffer.contents b

(* Match the step sequence against a root-first tag list; the whole tag
   list must be consumed (the path addresses the node itself). *)
let rec match_steps steps tags =
  match (steps, tags) with
  | [], [] -> true
  | [], _ :: _ -> false
  | _ :: _, [] -> false
  | { axis = Child; tag } :: steps', t :: tags' ->
    tag_matches tag t && match_steps steps' tags'
  | ({ axis = Descendant; tag } :: steps') as all, t :: tags' ->
    (tag_matches tag t && match_steps steps' tags') || match_steps all tags'

and tag_matches pattern t = match pattern with None -> true | Some p -> String.equal p t

(* tag chain of a node type, root first *)
let tag_chain doc path =
  List.rev_map (fun p -> Interner.name doc.Doc.tags (Path.tag doc.Doc.paths p))
    (Path.ancestors doc.Doc.paths path)

let path_matches doc p path = match_steps p.steps (tag_chain doc path)

let subtree_contains doc dewey kw =
  match Doc.keyword_id doc kw with
  | None -> false
  | Some id ->
    let lo, hi = Doc.subtree_node_range doc dewey in
    let rec scan i =
      i < hi
      && (List.exists (fun (k, _) -> k = id) doc.Doc.nodes.(i).Doc.keywords || scan (i + 1))
    in
    scan lo

let eval doc p =
  (* decide once per node type, then collect matching nodes *)
  let type_ok = Array.make (Path.size doc.Doc.paths) false in
  Path.iter (fun path -> type_ok.(path) <- path_matches doc p path) doc.Doc.paths;
  Array.to_list doc.Doc.nodes
  |> List.filter_map (fun (node : Doc.node) ->
         if
           type_ok.(node.Doc.path)
           && match p.filter with None -> true | Some kw -> subtree_contains doc node.Doc.dewey kw
         then Some node.Doc.dewey
         else None)

let matches doc p dewey =
  match Doc.find doc dewey with
  | None -> false
  | Some node ->
    path_matches doc p node.Doc.path
    && (match p.filter with None -> true | Some kw -> subtree_contains doc dewey kw)
