lib/xml/parser.ml: Lexer List Printf String Tree
