lib/xml/path.ml: Array Hashtbl Interner List String
