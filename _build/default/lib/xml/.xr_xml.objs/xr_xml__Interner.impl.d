lib/xml/interner.ml: Array Hashtbl
