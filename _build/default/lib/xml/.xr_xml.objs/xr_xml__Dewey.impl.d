lib/xml/dewey.ml: Array Buffer Format Hashtbl List Stdlib String
