lib/xml/path.mli: Interner
