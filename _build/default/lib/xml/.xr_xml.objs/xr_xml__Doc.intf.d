lib/xml/doc.mli: Dewey Interner Path Tree
