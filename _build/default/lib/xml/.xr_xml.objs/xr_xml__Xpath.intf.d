lib/xml/xpath.mli: Dewey Doc
