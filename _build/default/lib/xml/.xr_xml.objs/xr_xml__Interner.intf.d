lib/xml/interner.mli:
