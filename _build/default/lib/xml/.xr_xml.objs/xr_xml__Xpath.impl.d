lib/xml/xpath.ml: Array Buffer Doc Interner List Path Printf String Token
