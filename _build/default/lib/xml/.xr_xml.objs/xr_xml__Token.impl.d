lib/xml/token.ml: Buffer Char List String
