lib/xml/token.mli:
