lib/xml/doc.ml: Array Dewey Hashtbl Int Interner List Option Parser Path Printf Token Tree
