lib/xml/tree.mli:
