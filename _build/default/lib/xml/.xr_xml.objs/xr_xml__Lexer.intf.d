lib/xml/lexer.mli:
