(** Dewey labels for XML nodes.

    A Dewey label encodes the path of child ordinals from the document root
    to a node: the root is [[||]]; its second child is [[|1|]]; the first
    child of that node is [[|1; 0|]]. Lexicographic order on labels
    coincides with document order, and the lowest common ancestor of two
    nodes is the longest common prefix of their labels. *)

type t = int array

(** [compare a b] orders labels in document order (lexicographic, with a
    prefix ordered before its extensions). *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** [root] is the label of the document root ([[||]]). *)
val root : t

(** [child d i] is the label of the [i]-th child (0-based) of [d]. *)
val child : t -> int -> t

(** [parent d] is the label of [d]'s parent, or [None] for the root. *)
val parent : t -> t option

(** [depth d] is the number of components, i.e. 0 for the root. *)
val depth : t -> int

(** [is_prefix p d] is true iff [p] is a (non-strict) prefix of [d], i.e.
    the node labeled [p] is [d] or an ancestor of [d]. *)
val is_prefix : t -> t -> bool

(** [lca a b] is the longest common prefix of [a] and [b]: the Dewey label
    of the lowest common ancestor of the two nodes. *)
val lca : t -> t -> t

(** [prefix d n] is the first [n] components of [d].
    @raise Invalid_argument if [n > depth d]. *)
val prefix : t -> int -> t

(** [common_prefix_len a b] is the number of leading components shared by
    [a] and [b]. *)
val common_prefix_len : t -> t -> int

(** [to_string d] renders [d] as ["0.1.2"] (the root renders as ["0"];
    non-root labels are printed with a leading ["0."] component standing
    for the root, matching the paper's notation). *)
val to_string : t -> string

(** [of_string s] parses the notation produced by {!to_string}.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit

(** [hash d] is a hash compatible with {!equal}. *)
val hash : t -> int
