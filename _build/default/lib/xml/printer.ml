let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | '\'' -> Buffer.add_string b "&apos;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_attrs b attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ' ';
      Buffer.add_string b k;
      Buffer.add_string b "=\"";
      Buffer.add_string b (escape v);
      Buffer.add_char b '"')
    attrs

let text_only (t : Tree.t) =
  List.for_all (function Tree.Text _ -> true | Tree.Elem _ -> false) t.children

let to_string ?(indent = true) t =
  let b = Buffer.create 4096 in
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char b '\n' in
  let rec elem level (t : Tree.t) =
    pad level;
    Buffer.add_char b '<';
    Buffer.add_string b t.tag;
    add_attrs b t.attrs;
    if t.children = [] then Buffer.add_string b "/>"
    else begin
      Buffer.add_char b '>';
      if text_only t then
        List.iter (function Tree.Text s -> Buffer.add_string b (escape s) | Tree.Elem _ -> ()) t.children
      else begin
        nl ();
        List.iter
          (function
            | Tree.Elem e ->
              elem (level + 1) e;
              nl ()
            | Tree.Text s ->
              pad (level + 1);
              Buffer.add_string b (escape s);
              nl ())
          t.children
      end;
      if not (text_only t) then pad level;
      Buffer.add_string b "</";
      Buffer.add_string b t.tag;
      Buffer.add_char b '>'
    end
  in
  elem 0 t;
  nl ();
  Buffer.contents b

let to_file ?indent path t =
  let oc = open_out_bin path in
  output_string oc (to_string ?indent t);
  close_out oc
