(** In-memory XML trees: the surface representation produced by the parser
    and consumed by {!Doc.of_tree}. *)

type t = {
  tag : string;
  attrs : (string * string) list;
  children : child list;
}

and child =
  | Elem of t
  | Text of string

(** [elem ?attrs tag children] builds an element node. *)
val elem : ?attrs:(string * string) list -> string -> child list -> t

(** [leaf tag text] builds [<tag>text</tag>]. *)
val leaf : ?attrs:(string * string) list -> string -> string -> t

(** [text t] concatenates the direct text children of [t] (attribute
    values are appended as well, since keyword search treats them as value
    terms of the element). *)
val text : t -> string

(** [element_children t] is the list of element children, in order. *)
val element_children : t -> t list

(** [size t] is the number of element nodes in [t]. *)
val size : t -> int

(** [depth t] is the maximum element nesting depth ([1] for a leaf root). *)
val depth : t -> int

(** [find_all t p] is every element of [t] (preorder) satisfying [p]. *)
val find_all : t -> (t -> bool) -> t list

val equal : t -> t -> bool
