type t = {
  tag : string;
  attrs : (string * string) list;
  children : child list;
}

and child =
  | Elem of t
  | Text of string

let elem ?(attrs = []) tag children = { tag; attrs; children }

let leaf ?(attrs = []) tag text = { tag; attrs; children = [ Text text ] }

let text t =
  let b = Buffer.create 32 in
  List.iter
    (function
      | Text s ->
        if Buffer.length b > 0 then Buffer.add_char b ' ';
        Buffer.add_string b s
      | Elem _ -> ())
    t.children;
  List.iter
    (fun (_, v) ->
      if Buffer.length b > 0 then Buffer.add_char b ' ';
      Buffer.add_string b v)
    t.attrs;
  Buffer.contents b

let element_children t =
  List.filter_map (function Elem e -> Some e | Text _ -> None) t.children

let rec size t = 1 + List.fold_left (fun a c -> a + size c) 0 (element_children t)

let rec depth t =
  1 + List.fold_left (fun a c -> max a (depth c)) 0 (element_children t)

let find_all t p =
  let rec go acc t =
    let acc = if p t then t :: acc else acc in
    List.fold_left go acc (element_children t)
  in
  List.rev (go [] t)

let rec equal a b =
  String.equal a.tag b.tag
  && List.equal (fun (k, v) (k', v') -> String.equal k k' && String.equal v v') a.attrs b.attrs
  && List.equal equal_child a.children b.children

and equal_child a b =
  match (a, b) with
  | Elem a, Elem b -> equal a b
  | Text a, Text b -> String.equal a b
  | Elem _, Text _ | Text _, Elem _ -> false
