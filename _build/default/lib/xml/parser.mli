(** XML parser: turns a document string into a {!Tree.t}. *)

exception Error of int * string
(** [Error (pos, msg)]: syntax error at byte offset [pos]. *)

(** [parse_string s] parses a complete XML document with a single root
    element. @raise Error on malformed input. *)
val parse_string : string -> Tree.t

(** [parse_file path] reads [path] and parses it.
    @raise Error on malformed input, [Sys_error] on I/O failure. *)
val parse_file : string -> Tree.t
