type t = int array

let root = [||]

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let n = if la < lb then la else lb in
  let rec go i =
    if i = n then Stdlib.compare la lb
    else
      let c = Stdlib.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0

let child d i =
  let n = Array.length d in
  let r = Array.make (n + 1) 0 in
  Array.blit d 0 r 0 n;
  r.(n) <- i;
  r

let parent d =
  let n = Array.length d in
  if n = 0 then None else Some (Array.sub d 0 (n - 1))

let depth = Array.length

let is_prefix p d =
  let lp = Array.length p in
  lp <= Array.length d
  &&
  let rec go i = i = lp || (p.(i) = d.(i) && go (i + 1)) in
  go 0

let common_prefix_len a b =
  let n = min (Array.length a) (Array.length b) in
  let rec go i = if i < n && a.(i) = b.(i) then go (i + 1) else i in
  go 0

let lca a b = Array.sub a 0 (common_prefix_len a b)

let prefix d n =
  if n > Array.length d then invalid_arg "Dewey.prefix: too deep"
  else Array.sub d 0 n

let to_string d =
  if Array.length d = 0 then "0"
  else
    let b = Buffer.create 16 in
    Buffer.add_char b '0';
    Array.iter
      (fun i ->
        Buffer.add_char b '.';
        Buffer.add_string b (string_of_int i))
      d;
    Buffer.contents b

let of_string s =
  match String.split_on_char '.' s with
  | "0" :: rest ->
    let comp c =
      match int_of_string_opt c with
      | Some i when i >= 0 -> i
      | _ -> invalid_arg ("Dewey.of_string: bad component " ^ c)
    in
    Array.of_list (List.map comp rest)
  | _ -> invalid_arg ("Dewey.of_string: must start with 0: " ^ s)

let pp ppf d = Format.pp_print_string ppf (to_string d)

let hash d = Hashtbl.hash (Array.to_list d)
