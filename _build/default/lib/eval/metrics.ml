open Xr_xml

let related a b = Dewey.is_prefix a b || Dewey.is_prefix b a

let precision_recall ~relevant ~retrieved =
  match (relevant, retrieved) with
  | [], _ | _, [] -> (0., 0.)
  | _ ->
    let hit r = List.exists (related r) relevant in
    let covered t = List.exists (related t) retrieved in
    let p =
      float_of_int (List.length (List.filter hit retrieved))
      /. float_of_int (List.length retrieved)
    in
    let r =
      float_of_int (List.length (List.filter covered relevant))
      /. float_of_int (List.length relevant)
    in
    (p, r)

let f1 ~relevant ~retrieved =
  let p, r = precision_recall ~relevant ~retrieved in
  if p +. r = 0. then 0. else 2. *. p *. r /. (p +. r)

let reciprocal_rank hits =
  let rec go i = function
    | [] -> 0.
    | true :: _ -> 1. /. float_of_int i
    | false :: rest -> go (i + 1) rest
  in
  go 1 hits

let mean_reciprocal_rank hitss =
  match hitss with
  | [] -> 0.
  | _ ->
    List.fold_left (fun a h -> a +. reciprocal_rank h) 0. hitss
    /. float_of_int (List.length hitss)
