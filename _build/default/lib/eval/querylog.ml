open Xr_xml
module Rng = Xr_data.Rng
module Engine = Xr_refine.Engine
module Rule = Xr_refine.Rule
module Thesaurus = Xr_text.Thesaurus

type kind =
  | Misspell
  | Split_word
  | Merged_words
  | Synonym_mismatch
  | Acronym_mismatch
  | Overconstrain

let kind_name = function
  | Misspell -> "misspell"
  | Split_word -> "split-word"
  | Merged_words -> "merged-words"
  | Synonym_mismatch -> "synonym"
  | Acronym_mismatch -> "acronym"
  | Overconstrain -> "overconstrain"

let all_kinds =
  [ Misspell; Split_word; Merged_words; Synonym_mismatch; Acronym_mismatch; Overconstrain ]

type case = {
  kind : kind;
  intent : string list;
  corrupted : string list;
  repair : Rule.t list;
  intent_result_count : int;
}

let subtree_keywords (doc : Doc.t) dewey =
  match Doc.subtree doc dewey with
  | None -> []
  | Some t ->
    let acc = ref [] in
    let rec walk (e : Tree.t) =
      acc := Token.tokenize e.tag @ Token.tokenize (Tree.text e) @ !acc;
      List.iter walk (Tree.element_children e)
    in
    walk t;
    List.sort_uniq String.compare !acc

let sample_intent rng (index : Xr_index.Index.t) ~len =
  let doc = index.Xr_index.Index.doc in
  let partitions = List.length (Tree.element_children doc.Doc.tree) in
  if partitions = 0 then None
  else begin
    let attempt () =
      let pid = Rng.int rng partitions in
      let kws = subtree_keywords doc [| pid |] in
      (* keep value-ish keywords: drop one/two-letter tokens *)
      let kws = List.filter (fun k -> String.length k >= 3) kws in
      if List.length kws < len then None
      else begin
        let chosen = List.filteri (fun i _ -> i < len) (Rng.shuffle rng kws) in
        if Engine.search index chosen <> [] then Some chosen else None
      end
    in
    let rec try_n n = if n = 0 then None else match attempt () with Some q -> Some q | None -> try_n (n - 1) in
    try_n 50
  end

let in_doc (index : Xr_index.Index.t) k = Doc.keyword_id index.Xr_index.Index.doc k <> None

let random_edit rng w =
  let letters = "abcdefghijklmnopqrstuvwxyz" in
  let n = String.length w in
  match Rng.int rng 3 with
  | 0 when n > 3 ->
    (* drop a character *)
    let i = Rng.int rng n in
    String.sub w 0 i ^ String.sub w (i + 1) (n - i - 1)
  | 1 ->
    (* substitute a character *)
    let i = Rng.int rng n in
    let c = letters.[Rng.int rng 26] in
    String.sub w 0 i ^ String.make 1 c ^ String.sub w (i + 1) (n - i - 1)
  | _ ->
    (* insert a character *)
    let i = Rng.int rng (n + 1) in
    let c = letters.[Rng.int rng 26] in
    String.sub w 0 i ^ String.make 1 c ^ String.sub w i (n - i)

let replace_at l i repl = List.concat (List.mapi (fun j k -> if j = i then repl else [ k ]) l)

let pick_index rng p l =
  let idx = List.filteri (fun _ _ -> true) (List.mapi (fun i k -> (i, k)) l) in
  let ok = List.filter (fun (_, k) -> p k) idx in
  match ok with [] -> None | _ -> Some (Rng.pick_list rng ok)

let corrupt ?thesaurus rng (index : Xr_index.Index.t) kind intent =
  let finish corrupted repair =
    if
      corrupted <> intent
      && List.for_all (fun k -> String.length k > 0) corrupted
      && Engine.needs_refinement index corrupted
    then
      Some
        {
          kind;
          intent;
          corrupted;
          repair;
          intent_result_count = List.length (Engine.search index intent);
        }
    else None
  in
  match kind with
  | Misspell -> (
    match pick_index rng (fun k -> String.length k >= 5) intent with
    | None -> None
    | Some (i, k) ->
      let wrong = random_edit rng k in
      if in_doc index wrong then None
      else finish (replace_at intent i [ wrong ]) [ Rule.spelling wrong k ])
  | Split_word -> (
    match pick_index rng (fun k -> String.length k >= 6) intent with
    | None -> None
    | Some (i, k) ->
      let cut = 2 + Rng.int rng (String.length k - 3) in
      let a = String.sub k 0 cut and b = String.sub k cut (String.length k - cut) in
      finish (replace_at intent i [ a; b ]) [ Rule.merging [ a; b ] k ])
  | Merged_words -> (
    if List.length intent < 2 then None
    else begin
      let i = Rng.int rng (List.length intent - 1) in
      let a = List.nth intent i and b = List.nth intent (i + 1) in
      let glued = a ^ b in
      let corrupted =
        List.concat
          (List.mapi (fun j k -> if j = i then [ glued ] else if j = i + 1 then [] else [ k ]) intent)
      in
      finish corrupted [ Rule.split glued [ a; b ] ]
    end)
  | Synonym_mismatch -> (
    match thesaurus with
    | None -> None
    | Some th -> (
      (* replace an intent keyword by a synonym that is absent from the
         document, so the corrupted query cannot match *)
      let candidates =
        List.concat
          (List.mapi
             (fun i k ->
               List.filter_map
                 (fun (s, ds) -> if in_doc index s then None else Some (i, k, s, ds))
                 (Thesaurus.synonyms th k))
             intent)
      in
      match candidates with
      | [] -> None
      | _ ->
        let i, k, s, ds = Rng.pick_list rng candidates in
        finish (replace_at intent i [ s ]) [ Rule.synonym ~ds s k ]))
  | Acronym_mismatch -> (
    match thesaurus with
    | None -> None
    | Some th -> (
      (* an intent window that spells out a known acronym gets contracted *)
      let arr = Array.of_list intent in
      let hits = ref [] in
      for i = 0 to Array.length arr - 1 do
        for len = 2 to min 4 (Array.length arr - i) do
          let window = Array.to_list (Array.sub arr i len) in
          match Thesaurus.acronym_of th window with
          | Some acro when not (in_doc index acro) -> hits := (i, len, window, acro) :: !hits
          | Some _ | None -> ()
        done
      done;
      match !hits with
      | [] -> None
      | _ ->
        let i, len, window, acro = Rng.pick_list rng !hits in
        let corrupted =
          List.concat
            (List.mapi
               (fun j k -> if j = i then [ acro ] else if j > i && j < i + len then [] else [ k ])
               intent)
        in
        finish corrupted [ Rule.acronym_expand acro window ]))
  | Overconstrain -> (
    (* add a keyword from a different partition *)
    let doc = index.Xr_index.Index.doc in
    let partitions = List.length (Tree.element_children doc.Doc.tree) in
    if partitions < 2 then None
    else begin
      let pid = Rng.int rng partitions in
      let kws =
        List.filter
          (fun k -> String.length k >= 4 && not (List.mem k intent))
          (subtree_keywords doc [| pid |])
      in
      match kws with
      | [] -> None
      | _ ->
        let extra = Rng.pick_list rng kws in
        let corrupted = intent @ [ extra ] in
        finish corrupted [ Rule.deletion extra ~ds:2 ]
    end)

let generate ?thesaurus rng index ~kind ~n =
  let cases = ref [] in
  (match (kind, thesaurus) with
  | Acronym_mismatch, Some th ->
    (* Random intents rarely spell out an acronym; instead, start from the
       thesaurus: any expansion whose words form a meaningful result is a
       valid intent, which the corruption then contracts. *)
    let entries =
      List.sort compare (Thesaurus.acronyms th)
      |> List.filter (fun (_, expansion) ->
             List.for_all (in_doc index) expansion && Engine.search index expansion <> [])
    in
    List.iter
      (fun (_, expansion) ->
        if List.length !cases < n then
          (* optionally widen the intent with a co-occurring keyword *)
          let intents =
            match Engine.search index expansion with
            | dewey :: _ ->
              let extras =
                subtree_keywords index.Xr_index.Index.doc dewey
                |> List.filter (fun k -> String.length k >= 4 && not (List.mem k expansion))
              in
              let widened =
                match extras with [] -> [] | _ -> [ expansion @ [ Rng.pick_list rng extras ] ]
              in
              (expansion :: widened)
            | [] -> [ expansion ]
          in
          List.iter
            (fun intent ->
              if List.length !cases < n && Engine.search index intent <> [] then
                match corrupt ~thesaurus:th rng index kind intent with
                | Some case -> cases := case :: !cases
                | None -> ())
            intents)
      entries
  | _ ->
    let attempts = ref (n * 40) in
    while List.length !cases < n && !attempts > 0 do
      decr attempts;
      let len = 2 + Rng.int rng 3 in
      match sample_intent rng index ~len with
      | None -> ()
      | Some intent -> (
        match corrupt ?thesaurus rng index kind intent with
        | Some case -> cases := case :: !cases
        | None -> ())
    done);
  List.rev !cases

let pool ?thesaurus rng index ~per_kind =
  List.concat_map (fun kind -> generate ?thesaurus rng index ~kind ~n:per_kind) all_kinds
