lib/eval/querylog.ml: Array Doc List String Token Tree Xr_data Xr_index Xr_refine Xr_text Xr_xml
