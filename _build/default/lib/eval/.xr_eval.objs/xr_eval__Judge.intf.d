lib/eval/judge.mli: Dewey Xr_index Xr_xml
