lib/eval/judge.ml: Array Dewey Float Hashtbl List String Token Xr_refine Xr_xml
