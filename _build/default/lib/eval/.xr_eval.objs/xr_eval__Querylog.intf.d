lib/eval/querylog.mli: Xr_data Xr_index Xr_refine Xr_text
