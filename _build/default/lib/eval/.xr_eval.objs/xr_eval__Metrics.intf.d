lib/eval/metrics.mli: Dewey Xr_xml
