lib/eval/trace.mli: Querylog
