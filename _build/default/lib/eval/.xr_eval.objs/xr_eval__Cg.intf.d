lib/eval/cg.mli:
