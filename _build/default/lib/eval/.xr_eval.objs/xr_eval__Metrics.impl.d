lib/eval/metrics.ml: Dewey List Xr_xml
