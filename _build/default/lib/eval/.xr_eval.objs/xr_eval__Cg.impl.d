lib/eval/cg.ml: Array Float List
