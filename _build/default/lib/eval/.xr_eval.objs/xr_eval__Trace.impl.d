lib/eval/trace.ml: Buffer Printf Querylog String Xr_refine Xr_store
