(** Classical binary-judgement IR metrics (precision, recall, F-measure,
    reciprocal rank) — the measures the paper contrasts CG against
    (Section VIII-C cites their use in prior keyword-search work). Used by
    the benchmarks to report MRR of the intent repair alongside CG. *)

open Xr_xml

(** [precision_recall ~relevant ~retrieved] with the containment-tolerant
    match of {!Judge} (a retrieved node counts if it equals, contains or
    is contained in a relevant node). Both 0 when either side is empty. *)
val precision_recall : relevant:Dewey.t list -> retrieved:Dewey.t list -> float * float

(** [f1 ~relevant ~retrieved] is the harmonic mean of the above. *)
val f1 : relevant:Dewey.t list -> retrieved:Dewey.t list -> float

(** [reciprocal_rank hits] is [1/i] for the first [true] at 1-based
    position [i], or 0 if none. *)
val reciprocal_rank : bool list -> float

(** [mean_reciprocal_rank hitss] averages {!reciprocal_rank} over
    queries. *)
val mean_reciprocal_rank : bool list list -> float
