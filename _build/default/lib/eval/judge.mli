(** Simulated relevance judges.

    The paper calls up six human judges who grade each refined query (with
    its results) on a four-point scale. Our judges grade automatically
    against the known ground truth — the intent query the corruption
    generator started from — by comparing the refined query's meaningful
    SLCAs with the intent query's, plus keyword fidelity; each judge
    perturbs the raw score with seeded noise before discretizing, so the
    panel disagrees mildly, like humans do. *)

open Xr_xml

type judgment =
  | Irrelevant  (** gain 0 *)
  | Marginal  (** gain 1: few results partially match the intention *)
  | Fair  (** gain 2: some results fully match *)
  | Highly  (** gain 3: almost all results match *)

val gain : judgment -> float

(** [raw_score index ~intent ~rq ~slcas] in [0,1]: harmonic blend of
    result overlap (a result counts if it equals, contains or is contained
    in an intent result) and keyword overlap with the intent query. *)
val raw_score :
  Xr_index.Index.t ->
  intent:string list ->
  rq:string list ->
  slcas:Dewey.t list ->
  float

(** [judge ~seed index ~intent ~rq ~slcas] is one judge's verdict. *)
val judge :
  seed:int ->
  Xr_index.Index.t ->
  intent:string list ->
  rq:string list ->
  slcas:Dewey.t list ->
  judgment

(** [panel ~judges ~seed index ~intent ranked] grades a ranked list of
    refined queries ([keywords], [results]) and returns the panel-mean
    gain vector, ready for {!Cg.cumulate}. *)
val panel :
  judges:int ->
  seed:int ->
  Xr_index.Index.t ->
  intent:string list ->
  (string list * Dewey.t list) list ->
  float array
