module Codec = Xr_store.Codec
module Rule = Xr_refine.Rule

let magic = "XRTRACE1"

let kind_code = function
  | Querylog.Misspell -> 0
  | Querylog.Split_word -> 1
  | Querylog.Merged_words -> 2
  | Querylog.Synonym_mismatch -> 3
  | Querylog.Acronym_mismatch -> 4
  | Querylog.Overconstrain -> 5

let kind_of_code = function
  | 0 -> Querylog.Misspell
  | 1 -> Querylog.Split_word
  | 2 -> Querylog.Merged_words
  | 3 -> Querylog.Synonym_mismatch
  | 4 -> Querylog.Acronym_mismatch
  | 5 -> Querylog.Overconstrain
  | c -> failwith (Printf.sprintf "Trace: unknown corruption kind %d" c)

let op_code = function
  | Rule.Deletion -> 0
  | Rule.Merging -> 1
  | Rule.Split -> 2
  | Rule.Substitution -> 3

let op_of_code = function
  | 0 -> Rule.Deletion
  | 1 -> Rule.Merging
  | 2 -> Rule.Split
  | 3 -> Rule.Substitution
  | c -> failwith (Printf.sprintf "Trace: unknown operation %d" c)

let write_strings buf l = Codec.write_list Codec.write_string buf l

let read_strings r = Codec.read_list Codec.read_string r

let write_rule buf (r : Rule.t) =
  Codec.write_varint buf (op_code r.op);
  Codec.write_varint buf r.ds;
  write_strings buf r.lhs;
  write_strings buf r.rhs

let read_rule r =
  let op = op_of_code (Codec.read_varint r) in
  let ds = Codec.read_varint r in
  let lhs = read_strings r in
  let rhs = read_strings r in
  (* deletion rules have an empty RHS; Rule.make rejects empty LHS only *)
  Rule.make ~op ~ds lhs rhs

let write_case buf (c : Querylog.case) =
  Codec.write_varint buf (kind_code c.Querylog.kind);
  write_strings buf c.Querylog.intent;
  write_strings buf c.Querylog.corrupted;
  Codec.write_list write_rule buf c.Querylog.repair;
  Codec.write_varint buf c.Querylog.intent_result_count

let read_case r =
  let kind = kind_of_code (Codec.read_varint r) in
  let intent = read_strings r in
  let corrupted = read_strings r in
  let repair = Codec.read_list read_rule r in
  let intent_result_count = Codec.read_varint r in
  { Querylog.kind; intent; corrupted; repair; intent_result_count }

let encode cases =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Codec.write_list write_case buf cases;
  Buffer.contents buf

let decode s =
  if String.length s < String.length magic || String.sub s 0 (String.length magic) <> magic
  then failwith "Trace: not a trace file";
  let r = Codec.reader ~off:(String.length magic) s in
  let cases = Codec.read_list read_case r in
  if not (Codec.at_end r) then failwith "Trace: trailing bytes";
  cases

let save path cases =
  let oc = open_out_bin path in
  output_string oc (encode cases);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  decode s
