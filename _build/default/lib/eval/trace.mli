(** Workload trace persistence: save a generated query pool to disk and
    replay it later, so an evaluation run is reproducible independently of
    the generator (and traces can be shared across machines, like the
    paper's fixed 219-query pool). *)

(** [save path cases] writes the pool to [path] (binary, via the store
    codecs). *)
val save : string -> Querylog.case list -> unit

(** [load path] reads a pool written by {!save}.
    @raise Failure on a malformed or truncated trace. *)
val load : string -> Querylog.case list

(** In-memory variants, used by the round-trip tests. *)
val encode : Querylog.case list -> string

val decode : string -> Querylog.case list
