(** Workload generator: the substitute for the paper's live query log and
    human annotators.

    Starting from {e intent} queries sampled from the document (and
    therefore guaranteed to have meaningful results), each corruption
    injects exactly the defect one refinement operation repairs —
    misspelling, wrongly split word, wrongly merged words, term mismatch
    fixed by synonym/acronym substitution, or an overconstraining extra
    term — and records the annotator-style rule that undoes it. Every
    emitted case is verified to actually need refinement (Definition 3.4),
    mirroring the paper's pool of 219 empty-result queries with known
    fixes. *)

type kind =
  | Misspell  (** random edits produce an out-of-vocabulary word *)
  | Split_word  (** user typed one intent word as two: needs merging *)
  | Merged_words  (** user glued two intent words: needs splitting *)
  | Synonym_mismatch  (** user's word is a synonym of the data's word *)
  | Acronym_mismatch  (** user typed an acronym for a spelled-out phrase *)
  | Overconstrain  (** an extra term from elsewhere: needs deletion *)

val kind_name : kind -> string

val all_kinds : kind list

type case = {
  kind : kind;
  intent : string list;  (** the clean query, which has meaningful results *)
  corrupted : string list;  (** the query a user would issue *)
  repair : Xr_refine.Rule.t list;  (** annotator rules that undo the damage *)
  intent_result_count : int;
}

(** [sample_intent rng index ~len] draws a query of [len] distinct
    keywords from one random partition subtree, retrying until it has a
    meaningful SLCA; [None] if the document cannot yield one. *)
val sample_intent : Xr_data.Rng.t -> Xr_index.Index.t -> len:int -> string list option

(** [corrupt ?thesaurus rng index kind intent] applies one corruption;
    [None] when [kind] is not applicable to this intent (e.g. no synonym
    available) or the corrupted query would not need refinement. *)
val corrupt :
  ?thesaurus:Xr_text.Thesaurus.t ->
  Xr_data.Rng.t ->
  Xr_index.Index.t ->
  kind ->
  string list ->
  case option

(** [generate ?thesaurus rng index ~kind ~n] emits up to [n] verified
    cases of one kind (best effort within a bounded number of attempts). *)
val generate :
  ?thesaurus:Xr_text.Thesaurus.t ->
  Xr_data.Rng.t ->
  Xr_index.Index.t ->
  kind:kind ->
  n:int ->
  case list

(** [pool ?thesaurus rng index ~per_kind] is the full mixed pool in a
    deterministic order. *)
val pool :
  ?thesaurus:Xr_text.Thesaurus.t ->
  Xr_data.Rng.t ->
  Xr_index.Index.t ->
  per_kind:int ->
  case list
