(** Cumulated-Gain evaluation (Järvelin & Kekäläinen), the metric of the
    paper's effectiveness study (Section VIII-C): a ranked list of graded
    gains [G] turns into the vector [CG] with [CG(1) = G(1)] and
    [CG(i) = CG(i-1) + G(i)]. *)

(** [cumulate gains] is the CG vector. *)
val cumulate : float array -> float array

(** [at gains i] is [CG(i)] with 1-based [i]; positions beyond the list
    repeat the final value (a shorter result list gains nothing more). *)
val at : float array -> int -> float

(** [dcg ?base gains] is the discounted variant
    [G(1) + sum_{i>=2} G(i)/log_base(i)] (default base 2), provided for
    completeness. *)
val dcg : ?base:float -> float array -> float array

(** [ndcg gains ~ideal] is the normalized DCG vector: each position's DCG
    divided by the DCG of the ideal (descending) ordering of [ideal]
    (typically the same gains, or the best achievable set); positions
    where the ideal is 0 yield 0. *)
val ndcg : float array -> ideal:float array -> float array

(** [mean vectors] averages CG vectors position-wise (shorter vectors are
    padded with their last value; the result has the longest length).
    Returns [[||]] on an empty input. *)
val mean : float array list -> float array
