let cumulate gains =
  let n = Array.length gains in
  let cg = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. gains.(i);
    cg.(i) <- !acc
  done;
  cg

let at gains i =
  if i < 1 then invalid_arg "Cg.at: positions are 1-based";
  let cg = cumulate gains in
  let n = Array.length cg in
  if n = 0 then 0. else cg.(min (i - 1) (n - 1))

let dcg ?(base = 2.) gains =
  let n = Array.length gains in
  let v = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let g = if i = 0 then gains.(0) else gains.(i) /. (log (float_of_int (i + 1)) /. log base) in
    acc := !acc +. g;
    v.(i) <- !acc
  done;
  v

let ndcg gains ~ideal =
  let ideal_sorted = Array.copy ideal in
  Array.sort (fun a b -> Float.compare b a) ideal_sorted;
  let d = dcg gains in
  let di = dcg ideal_sorted in
  Array.mapi
    (fun i v ->
      let denom = if i < Array.length di then di.(i) else if Array.length di = 0 then 0. else di.(Array.length di - 1) in
      if denom <= 0. then 0. else v /. denom)
    d

let mean vectors =
  match vectors with
  | [] -> [||]
  | _ ->
    let len = List.fold_left (fun a v -> max a (Array.length v)) 0 vectors in
    if len = 0 then [||]
    else begin
      let sum = Array.make len 0. in
      List.iter
        (fun v ->
          for i = 0 to len - 1 do
            let x =
              if Array.length v = 0 then 0.
              else if i < Array.length v then v.(i)
              else v.(Array.length v - 1)
            in
            sum.(i) <- sum.(i) +. x
          done)
        vectors;
      let n = float_of_int (List.length vectors) in
      Array.map (fun s -> s /. n) sum
    end
