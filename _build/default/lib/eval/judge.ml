open Xr_xml
module Engine = Xr_refine.Engine

type judgment = Irrelevant | Marginal | Fair | Highly

let gain = function Irrelevant -> 0. | Marginal -> 1. | Fair -> 2. | Highly -> 3.

let related a b = Dewey.is_prefix a b || Dewey.is_prefix b a

let list_overlap truth results =
  match (truth, results) with
  | [], _ | _, [] -> 0.
  | _ ->
    let hit r = List.exists (related r) truth in
    let covered t = List.exists (related t) results in
    let precision =
      float_of_int (List.length (List.filter hit results))
      /. float_of_int (List.length results)
    in
    let recall =
      float_of_int (List.length (List.filter covered truth))
      /. float_of_int (List.length truth)
    in
    if precision +. recall = 0. then 0. else 2. *. precision *. recall /. (precision +. recall)

let keyword_overlap intent rq =
  let intent = List.sort_uniq String.compare (List.map Token.normalize intent) in
  let rq = List.sort_uniq String.compare (List.map Token.normalize rq) in
  match (intent, rq) with
  | [], _ | _, [] -> 0.
  | _ ->
    let inter = List.length (List.filter (fun k -> List.mem k rq) intent) in
    let union = List.length (List.sort_uniq String.compare (intent @ rq)) in
    float_of_int inter /. float_of_int union

let raw_score index ~intent ~rq ~slcas =
  let truth = Engine.search index intent in
  let results_part = list_overlap truth slcas in
  let keywords_part = keyword_overlap intent rq in
  (0.7 *. results_part) +. (0.3 *. keywords_part)

(* Deterministic per-judge jitter in [-0.12, 0.12]. *)
let jitter seed intent rq =
  let h = Hashtbl.hash (seed, intent, rq) in
  (float_of_int (h mod 1000) /. 1000. -. 0.5) *. 0.24

let discretize score =
  if score >= 0.75 then Highly
  else if score >= 0.45 then Fair
  else if score >= 0.15 then Marginal
  else Irrelevant

let judge ~seed index ~intent ~rq ~slcas =
  let s = raw_score index ~intent ~rq ~slcas +. jitter seed intent rq in
  discretize (Float.max 0. (Float.min 1. s))

let panel ~judges ~seed index ~intent ranked =
  Array.of_list
    (List.map
       (fun (rq, slcas) ->
         let total = ref 0. in
         for j = 0 to judges - 1 do
           total := !total +. gain (judge ~seed:(seed + j) index ~intent ~rq ~slcas)
         done;
         !total /. float_of_int judges)
       ranked)
