(** XMark-style auction-site corpus generator.

    The classic XML benchmark schema ([site/regions/.../item],
    [people/person], [open_auctions/open_auction], ...). Structurally the
    opposite of DBLP: the root has only a handful of children, so document
    partitions (Definition 6.1) are few and huge — a stress shape for the
    partition-based refinement algorithm — and entities cross-reference
    each other ([itemref], [seller]) like real auction data. *)

type config = {
  seed : int;
  items : int;  (** split across the six regions *)
  people : int;
  open_auctions : int;
  closed_auctions : int;
  categories : int;
}

val default_config : config

val generate : ?config:config -> unit -> Xr_xml.Tree.t

val doc : ?config:config -> unit -> Xr_xml.Doc.t
