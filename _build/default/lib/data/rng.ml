type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992. (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with [] -> invalid_arg "Rng.pick_list: empty list" | _ -> List.nth l (int t (List.length l))

let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let split t = create (Int64.to_int (next t))
