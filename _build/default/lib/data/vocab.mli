(** Curated vocabularies for the synthetic corpora. Title words are
    ordered roughly by how common they are in CS bibliographies, so a
    Zipf sampler over the array position produces realistic skew. *)

(** Title vocabulary for DBLP-like documents, most common first. *)
val title_words : string array

(** Author first names. *)
val first_names : string array

(** Author last names. *)
val last_names : string array

(** Conference/venue names (single tokens). *)
val venues : string array

(** Baseball player surnames (reuses {!last_names}) and team/city names. *)
val team_cities : string array

val team_nicknames : string array

val positions : string array
