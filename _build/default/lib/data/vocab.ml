let title_words =
  [|
    (* very common *)
    "data"; "system"; "analysis"; "model"; "query"; "database"; "efficient";
    "xml"; "web"; "search"; "network"; "algorithm"; "distributed"; "learning";
    "design"; "processing"; "information"; "performance"; "approach"; "management";
    (* common *)
    "keyword"; "semantic"; "parallel"; "optimization"; "mining"; "language";
    "evaluation"; "dynamic"; "structure"; "framework"; "application"; "scalable";
    "index"; "indexing"; "storage"; "memory"; "cache"; "transaction"; "schema";
    "stream"; "graph"; "tree"; "pattern"; "matching"; "join"; "twig"; "ranking";
    "retrieval"; "clustering"; "classification"; "knowledge"; "integration";
    "adaptive"; "probabilistic"; "logic"; "relational"; "spatial"; "temporal";
    "online"; "interactive"; "incremental"; "approximate"; "similarity";
    (* medium *)
    "skyline"; "computation"; "aggregation"; "partition"; "compression";
    "encryption"; "security"; "privacy"; "authentication"; "verification";
    "recovery"; "replication"; "consistency"; "concurrency"; "scheduling";
    "workload"; "benchmark"; "sampling"; "estimation"; "selectivity";
    "histogram"; "materialized"; "view"; "cube"; "warehouse"; "federated";
    "mediator"; "wrapper"; "ontology"; "annotation"; "extraction"; "wrapper2";
    "crawling"; "filtering"; "recommendation"; "personalization"; "profile";
    "sensor"; "mobile"; "wireless"; "peer"; "overlay"; "routing"; "multicast";
    "protocol"; "latency"; "throughput"; "bandwidth"; "topology"; "fault";
    "tolerance"; "availability"; "reliability"; "monitoring"; "diagnosis";
    "visualization"; "interface"; "usability"; "collaboration"; "workflow";
    "provenance"; "lineage"; "versioning"; "archiving"; "deduplication";
    "cleaning"; "quality"; "uncertainty"; "fuzzy"; "probabilistic2"; "bayesian";
    "markov"; "neural"; "genetic"; "evolutionary"; "heuristic"; "greedy";
    "randomized"; "deterministic"; "polynomial"; "complexity"; "bound";
    "lower"; "upper"; "optimal"; "approximation"; "hardness"; "reduction";
    (* rarer *)
    "bitemporal"; "multiversion"; "snapshot"; "isolation"; "serializable";
    "lock"; "latch"; "logging"; "checkpoint"; "buffer"; "prefetching";
    "vectorized"; "columnar"; "row"; "hybrid"; "adaptive2"; "autonomic";
    "declarative"; "imperative"; "functional"; "object"; "oriented";
    "deductive"; "active"; "trigger"; "constraint"; "dependency"; "normal";
    "form"; "decomposition"; "lossless"; "chase"; "tableau"; "datalog";
    "xpath"; "xquery"; "xslt"; "dtd"; "namespace"; "dom"; "sax"; "dewey";
    "labeling"; "numbering"; "region"; "interval"; "containment"; "ancestor";
    "descendant"; "sibling"; "preorder"; "postorder"; "traversal"; "holistic";
    "stack"; "merge"; "hash"; "sort"; "nested"; "loop"; "pipeline";
    "operator"; "cardinality"; "cost"; "plan"; "rewrite"; "unnesting";
    "decorrelation"; "predicate"; "pushdown"; "projection"; "selection";
    "duplicate"; "elimination"; "grouping"; "windowed"; "continuous";
    "punctuation"; "watermark"; "load"; "shedding"; "elastic"; "cloud";
    "virtualization"; "container"; "microservice"; "serverless"; "edge";
    "federation"; "blockchain"; "ledger"; "consensus"; "paxos"; "quorum";
    "gossip"; "epidemic"; "vector"; "clock"; "causal"; "eventual";
    "linearizable"; "byzantine"; "failure"; "detector"; "membership";
    "partitioning"; "sharding"; "rebalancing"; "migration"; "placement";
    "locality"; "affinity"; "numa"; "simd"; "gpu"; "fpga"; "accelerator";
    "offloading"; "codesign"; "tiered"; "persistent"; "nonvolatile"; "flash";
    "ssd"; "disk"; "tape"; "hierarchical"; "lsm"; "btree"; "trie"; "bitmap";
    "bloom"; "sketch"; "wavelet"; "fourier"; "dimensionality"; "embedding";
    "manifold"; "kernel"; "margin"; "ensemble"; "boosting"; "bagging";
    "regression"; "inference"; "entropy"; "divergence"; "likelihood";
    "posterior"; "prior"; "gibbs"; "variational"; "gradient"; "descent";
    "convex"; "lagrangian"; "dual"; "primal"; "simplex"; "integer";
    "programming"; "satisfiability"; "automata"; "grammar"; "parsing";
    "compiler"; "interpreter"; "bytecode"; "garbage"; "collection";
    "escape"; "aliasing"; "pointer"; "shape"; "abstract"; "interpretation";
    "refinement"; "specification"; "theorem"; "proving"; "tactic"; "calculus";
    (* long tail *)
    "semistructured"; "heterogeneous"; "mediation"; "translation"; "mapping";
    "matching2"; "alignment"; "merging"; "fusion"; "entity"; "resolution";
    "record"; "linkage"; "canonicalization"; "normalization"; "segmentation";
    "tokenization"; "stemming"; "lemmatization"; "thesaurus"; "synonym";
    "polysemy"; "disambiguation"; "coreference"; "anaphora"; "discourse";
    "summarization"; "translation2"; "generation"; "dialogue"; "question";
    "answering"; "snippet"; "highlighting"; "faceted"; "browsing";
    "navigation"; "exploration"; "drill"; "rollup"; "pivot"; "slicing";
    "dicing"; "lattice"; "concept"; "taxonomy"; "folksonomy"; "tagging";
    "bookmark"; "citation"; "bibliometric"; "impact"; "venue"; "authorship";
    "attribution"; "plagiarism"; "duplication"; "novelty"; "diversity";
    "serendipity"; "coverage"; "freshness"; "staleness"; "expiration";
    "invalidation"; "admission"; "eviction"; "prefetch"; "speculation";
    "branch"; "prediction"; "pipelining"; "superscalar"; "vectorization";
    "parallelization"; "synchronization"; "barrier"; "semaphore"; "mutex";
    "deadlock"; "livelock"; "starvation"; "fairness"; "priority";
    "inversion"; "preemption"; "quantum"; "timeslice"; "affinity2";
    "oversubscription"; "utilization"; "saturation"; "contention";
    "interference"; "isolation2"; "multitenancy"; "provisioning";
    "autoscaling"; "orchestration"; "deployment"; "rollback"; "canary";
    "bluegreen"; "observability"; "tracing"; "profiling"; "instrumentation";
    "telemetry"; "alerting"; "anomaly"; "outlier"; "drift"; "seasonality";
    "forecasting"; "smoothing"; "interpolation"; "extrapolation";
    "quantization"; "pruning"; "distillation"; "finetuning"; "pretraining";
    "transformer"; "attention"; "convolution"; "recurrent"; "dropout";
    "regularization"; "overfitting"; "generalization"; "calibration";
    "fairness2"; "interpretability"; "explainability"; "robustness";
    "adversarial"; "perturbation"; "certification"; "verification2";
    "abstraction"; "bisimulation"; "invariant"; "liveness"; "safety";
    "temporal2"; "modal"; "epistemic"; "deontic"; "fixpoint"; "induction";
    "coinduction"; "unification"; "substitution"; "rewriting"; "confluence";
    "termination"; "normalisation"; "strategy"; "heuristics"; "metaheuristic";
    "annealing"; "tabu"; "swarm"; "colony"; "gradient2"; "momentum";
    "stochastic"; "minibatch"; "epoch"; "convergence"; "divergence2";
    "oscillation"; "stability"; "conditioning"; "preconditioner"; "sparse";
    "dense"; "factorization"; "decomposition2"; "eigenvalue"; "singular";
    "orthogonal"; "projection2"; "subspace"; "manifold2"; "geodesic";
    "curvature"; "topology2"; "homology"; "persistence2"; "filtration";
  |]

let first_names =
  [|
    "john"; "wei"; "michael"; "david"; "james"; "robert"; "mary"; "jennifer";
    "lei"; "jing"; "yong"; "hui"; "ming"; "feng"; "xiaofeng"; "jiaheng";
    "zhifeng"; "tok"; "beng"; "chee"; "kian"; "anthony"; "divesh"; "surajit";
    "rakesh"; "jeffrey"; "hector"; "jim"; "pat"; "bruce"; "donald"; "edgar";
    "christos"; "dan"; "daniel"; "susan"; "laura"; "anne"; "maria"; "elena";
    "peter"; "paul"; "mark"; "steven"; "kevin"; "brian"; "george"; "kenneth";
    "timothy"; "jose"; "carlos"; "luis"; "juan"; "pedro"; "ana"; "sofia";
    "yuki"; "hiroshi"; "takeshi"; "kenji"; "akira"; "satoshi"; "naoko";
    "raj"; "amit"; "ankit"; "priya"; "deepak"; "sanjay"; "vijay"; "arun";
    "olga"; "ivan"; "dmitri"; "sergei"; "natasha"; "andrei"; "mikhail";
    "hans"; "klaus"; "jurgen"; "wolfgang"; "gerhard"; "fritz"; "heinz";
    "pierre"; "jean"; "francois"; "michel"; "claude"; "henri"; "luc";
    "fatima"; "ahmed"; "omar"; "layla"; "yusuf"; "amina"; "khalid";
    "chinedu"; "ngozi"; "kwame"; "ama"; "thabo"; "zanele"; "sipho";
    "linnea"; "bjorn"; "astrid"; "soren"; "ingrid"; "magnus"; "freja";
    "katarzyna"; "piotr"; "agnieszka"; "marek"; "zofia"; "tomasz";
    "beatriz"; "rafael"; "camila"; "thiago"; "fernanda"; "gustavo";
    "mei"; "xiu"; "lan"; "ting"; "yan"; "qing"; "hong"; "ping";
  |]

let last_names =
  [|
    "smith"; "johnson"; "williams"; "brown"; "jones"; "miller"; "davis";
    "wang"; "li"; "zhang"; "liu"; "chen"; "yang"; "huang"; "zhao"; "wu";
    "zhou"; "xu"; "sun"; "ma"; "zhu"; "hu"; "guo"; "lin"; "he"; "gao";
    "lu"; "bao"; "ling"; "meng"; "ooi"; "tan"; "lee"; "kim"; "park";
    "garcia"; "rodriguez"; "martinez"; "hernandez"; "lopez"; "gonzalez";
    "wilson"; "anderson"; "thomas"; "taylor"; "moore"; "jackson"; "martin";
    "thompson"; "white"; "harris"; "clark"; "lewis"; "robinson"; "walker";
    "young"; "allen"; "king"; "wright"; "scott"; "torres"; "nguyen";
    "hill"; "flores"; "green"; "adams"; "nelson"; "baker"; "hall";
    "rivera"; "campbell"; "mitchell"; "carter"; "roberts"; "gomez";
    "phillips"; "evans"; "turner"; "diaz"; "parker"; "cruz"; "edwards";
    "collins"; "reyes"; "stewart"; "morris"; "morales"; "murphy"; "cook";
    "rogers"; "gutierrez"; "ortiz"; "morgan"; "cooper"; "peterson"; "bailey";
    "reed"; "kelly"; "howard"; "ramos"; "cox"; "ward"; "richardson";
    "watson"; "brooks"; "chavez"; "wood"; "james"; "bennett"; "gray";
    "mendoza"; "ruiz"; "hughes"; "price"; "alvarez"; "castillo"; "sanders";
    "patel"; "myers"; "long"; "ross"; "foster"; "jimenez"; "tanaka";
    "suzuki"; "watanabe"; "ito"; "yamamoto"; "nakamura"; "kobayashi";
    "mueller"; "schmidt"; "schneider"; "fischer"; "weber"; "meyer";
    "ivanov"; "petrov"; "sidorov"; "volkov"; "kuznetsov"; "sokolov";
  |]

let venues =
  [|
    "sigmod"; "vldb"; "icde"; "edbt"; "cikm"; "sigir"; "www"; "kdd";
    "icdm"; "pods"; "soda"; "focs"; "stoc"; "icalp"; "popl"; "pldi";
    "osdi"; "sosp"; "nsdi"; "usenix"; "eurosys"; "middleware"; "icdcs";
    "infocom"; "sigcomm"; "mobicom"; "sensys"; "ipsn"; "icml"; "nips";
    "aaai"; "ijcai"; "acl"; "emnlp"; "cvpr"; "iccv"; "eccv"; "chi";
    "uist"; "vis";
  |]

let team_cities =
  [|
    "atlanta"; "baltimore"; "boston"; "chicago"; "cleveland"; "detroit";
    "houston"; "kansas"; "anaheim"; "minnesota"; "york"; "oakland";
    "seattle"; "tampa"; "texas"; "toronto"; "arizona"; "colorado";
    "cincinnati"; "florida"; "milwaukee"; "montreal"; "philadelphia";
    "pittsburgh"; "diego"; "francisco"; "louis";
  |]

let team_nicknames =
  [|
    "braves"; "orioles"; "sox"; "cubs"; "indians"; "tigers"; "astros";
    "royals"; "angels"; "twins"; "yankees"; "athletics"; "mariners";
    "rays"; "rangers"; "jays"; "diamondbacks"; "rockies"; "reds";
    "marlins"; "brewers"; "expos"; "phillies"; "pirates"; "padres";
    "giants"; "cardinals"; "mets"; "dodgers"; "nationals";
  |]

let positions =
  [|
    "pitcher"; "catcher"; "first"; "second"; "third"; "shortstop";
    "leftfield"; "centerfield"; "rightfield"; "designated";
  |]
