(** Deterministic splittable RNG (SplitMix64), so every generated dataset
    and workload is reproducible from its seed. *)

type t

val create : int -> t

(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)
val int : t -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [range t lo hi] is uniform in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

(** [pick t arr] is a uniform element of [arr]. *)
val pick : t -> 'a array -> 'a

(** [pick_list t l] is a uniform element of [l]. *)
val pick_list : t -> 'a list -> 'a

(** [shuffle t l] is a uniform permutation of [l]. *)
val shuffle : t -> 'a list -> 'a list

(** [split t] derives an independent generator (consuming one draw). *)
val split : t -> t
