(** Synthetic Baseball dataset generator, following the classic
    [season/league/division/team/player] schema of the paper's second
    (small, deeply structured, low-vocabulary) corpus. *)

type config = {
  seed : int;
  leagues : int;
  divisions_per_league : int;
  teams_per_division : int;
  players_per_team : int;
}

val default_config : config

val generate : ?config:config -> unit -> Xr_xml.Tree.t

val doc : ?config:config -> unit -> Xr_xml.Doc.t
