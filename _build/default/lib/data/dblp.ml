open Xr_xml

type config = {
  publications : int;
  seed : int;
  year_lo : int;
  year_hi : int;
  title_len_lo : int;
  title_len_hi : int;
  zipf_s : float;
}

let default_config =
  {
    publications = 2000;
    seed = 42;
    year_lo = 1990;
    year_hi = 2007;
    title_len_lo = 4;
    title_len_hi = 9;
    zipf_s = 1.05;
  }

let author_name rng =
  Rng.pick rng Vocab.first_names ^ " " ^ Rng.pick rng Vocab.last_names

let title rng zipf n =
  let rec distinct acc k =
    if k = 0 then acc
    else
      let w = Zipf.pick zipf rng Vocab.title_words in
      if List.mem w acc then distinct acc k else distinct (w :: acc) (k - 1)
  in
  String.concat " " (List.rev (distinct [] n))

let publication rng zipf cfg =
  let is_article = Rng.int rng 10 < 3 in
  let tag = if is_article then "article" else "inproceedings" in
  let nauthors = 1 + Rng.int rng 3 in
  let authors =
    List.init nauthors (fun _ -> Tree.Elem (Tree.leaf "author" (author_name rng)))
  in
  let ntitle = Rng.range rng cfg.title_len_lo cfg.title_len_hi in
  let fields =
    [
      Tree.Elem (Tree.leaf "title" (title rng zipf ntitle));
      Tree.Elem (Tree.leaf "year" (string_of_int (Rng.range rng cfg.year_lo cfg.year_hi)));
      Tree.Elem
        (Tree.leaf
           (if is_article then "journal" else "booktitle")
           (Rng.pick rng Vocab.venues));
      Tree.Elem
        (Tree.leaf "pages"
           (let lo = 1 + Rng.int rng 500 in
            Printf.sprintf "%d %d" lo (lo + 5 + Rng.int rng 20)));
      Tree.Elem
        (Tree.leaf "month"
           [| "january"; "february"; "march"; "april"; "may"; "june"; "july"; "august";
              "september"; "october"; "november"; "december" |].(Rng.int rng 12));
    ]
  in
  Tree.elem tag (authors @ fields)

let generate ?(config = default_config) () =
  let rng = Rng.create config.seed in
  let zipf = Zipf.create ~n:(Array.length Vocab.title_words) ~s:config.zipf_s in
  Tree.elem "dblp"
    (List.init config.publications (fun _ -> Tree.Elem (publication rng zipf config)))

let doc ?config () = Doc.of_tree (generate ?config ())

let scaled ~publications ~seed = generate ~config:{ default_config with publications; seed } ()
