open Xr_xml

type config = {
  seed : int;
  leagues : int;
  divisions_per_league : int;
  teams_per_division : int;
  players_per_team : int;
}

let default_config =
  { seed = 7; leagues = 2; divisions_per_league = 3; teams_per_division = 5; players_per_team = 18 }

let player rng =
  let stat tag lo hi = Tree.Elem (Tree.leaf tag (string_of_int (Rng.range rng lo hi))) in
  Tree.elem "player"
    [
      Tree.Elem
        (Tree.leaf "name" (Rng.pick rng Vocab.first_names ^ " " ^ Rng.pick rng Vocab.last_names));
      Tree.Elem (Tree.leaf "position" (Rng.pick rng Vocab.positions));
      stat "games" 20 162;
      stat "at_bats" 50 600;
      stat "hits" 10 220;
      stat "home_runs" 0 55;
      stat "runs_batted_in" 5 140;
      stat "average" 180 360;
    ]

let team rng config =
  let city = Rng.pick rng Vocab.team_cities in
  let nick = Rng.pick rng Vocab.team_nicknames in
  Tree.elem "team"
    (Tree.Elem (Tree.leaf "team_name" nick)
     :: Tree.Elem (Tree.leaf "team_city" city)
     :: List.init config.players_per_team (fun _ -> Tree.Elem (player rng)))

let division rng config i =
  let dname = [| "east"; "central"; "west"; "north"; "south" |].(i mod 5) in
  Tree.elem "division"
    (Tree.Elem (Tree.leaf "division_name" dname)
     :: List.init config.teams_per_division (fun _ -> Tree.Elem (team rng config)))

let league rng config i =
  let lname = if i = 0 then "american" else "national" in
  Tree.elem "league"
    (Tree.Elem (Tree.leaf "league_name" lname)
     :: List.init config.divisions_per_league (fun j -> Tree.Elem (division rng config j)))

let generate ?(config = default_config) () =
  let rng = Rng.create config.seed in
  Tree.elem "season"
    (Tree.Elem (Tree.leaf "year" "1998")
     :: List.init config.leagues (fun i -> Tree.Elem (league rng config i)))

let doc ?config () = Doc.of_tree (generate ?config ())
