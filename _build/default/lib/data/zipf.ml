type t = { cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  let cdf = Array.make n 0. in
  let total = ref 0. in
  for k = 0 to n - 1 do
    total := !total +. (1. /. (float_of_int (k + 1) ** s));
    cdf.(k) <- !total
  done;
  let z = !total in
  Array.iteri (fun i v -> cdf.(i) <- v /. z) cdf;
  { cdf }

let sample t rng =
  let u = Rng.float rng in
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let pick t rng arr =
  if Array.length arr <> Array.length t.cdf then invalid_arg "Zipf.pick: size mismatch";
  arr.(sample t rng)
