(** The paper's running-example bibliography (Figure 1), reconstructed
    from the worked examples.

    Two [author] partitions under [bib]; the document is shaped so that
    the paper's examples behave as described: [{database, publication}]
    has no match (the data says [proceedings]/[article]/[inproceedings]);
    [{on, line, data, base}] exercises term merging against a title
    containing "online database"; the second author has a [hobby] element
    ("on line games"); "XML" occurs in the subtrees of exactly two
    [inproceedings] nodes. *)

val tree : unit -> Xr_xml.Tree.t

val doc : unit -> Xr_xml.Doc.t

(** The document as an XML string. *)
val text : unit -> string
