lib/data/rng.mli:
