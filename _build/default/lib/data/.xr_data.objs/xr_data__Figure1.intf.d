lib/data/figure1.mli: Xr_xml
