lib/data/vocab.ml:
