lib/data/baseball.ml: Array Doc List Rng Tree Vocab Xr_xml
