lib/data/rng.ml: Array Int64 List
