lib/data/vocab.mli:
