lib/data/figure1.ml: Doc Printer Tree Xr_xml
