lib/data/baseball.mli: Xr_xml
