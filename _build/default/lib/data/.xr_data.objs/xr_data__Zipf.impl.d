lib/data/zipf.ml: Array Rng
