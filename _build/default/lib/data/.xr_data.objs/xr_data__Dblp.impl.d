lib/data/dblp.ml: Array Doc List Printf Rng String Tree Vocab Xr_xml Zipf
