lib/data/dblp.mli: Xr_xml
