lib/data/auction.mli: Xr_xml
