lib/data/zipf.mli: Rng
