open Xr_xml

let tree () =
  let t = Tree.leaf and e = Tree.elem in
  let pub tag title year venue_tag venue =
    e tag [ Tree.Elem (t "title" title); Tree.Elem (t "year" year); Tree.Elem (t venue_tag venue) ]
  in
  e "bib"
    [
      Tree.Elem
        (e "author"
           [
             Tree.Elem (t "name" "John Ben");
             Tree.Elem
               (e "publications"
                  [
                    Tree.Elem
                      (pub "inproceedings" "base line keyword search" "2000" "booktitle" "VLDB");
                    Tree.Elem
                      (pub "inproceedings" "online database systems" "2005" "booktitle" "SIGMOD");
                    Tree.Elem
                      (pub "article" "twig pattern matching algorithms" "2006" "journal" "TODS");
                  ]);
             Tree.Elem (t "interest" "web search");
           ]);
      Tree.Elem
        (e "author"
           [
             Tree.Elem (t "name" "Mary Lee");
             Tree.Elem
               (e "publications"
                  [
                    Tree.Elem
                      (pub "inproceedings" "XML keyword query processing" "2003" "booktitle" "ICDE");
                    Tree.Elem
                      (pub "inproceedings" "XML twig join for streams" "2003" "booktitle"
                         "VLDB");
                    Tree.Elem (pub "proceedings" "management systems conference" "2007" "publisher" "ACM");
                  ]);
             Tree.Elem (t "hobby" "on line games");
           ]);
    ]

let doc () = Doc.of_tree (tree ())

let text () = Printer.to_string (tree ())
