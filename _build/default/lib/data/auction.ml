open Xr_xml

type config = {
  seed : int;
  items : int;
  people : int;
  open_auctions : int;
  closed_auctions : int;
  categories : int;
}

let default_config =
  { seed = 17; items = 120; people = 80; open_auctions = 60; closed_auctions = 40; categories = 12 }

let regions = [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |]

let words rng zipf n =
  String.concat " " (List.init n (fun _ -> Zipf.pick zipf rng Vocab.title_words))


let item rng zipf i =
  Tree.elem ~attrs:[ ("id", Printf.sprintf "item%d" i) ] "item"
    [
      Tree.Elem (Tree.leaf "name" (words rng zipf 2));
      Tree.Elem (Tree.leaf "location" (Rng.pick rng Vocab.team_cities));
      Tree.Elem (Tree.leaf "quantity" (string_of_int (1 + Rng.int rng 5)));
      Tree.Elem (Tree.leaf "payment" (Rng.pick_list rng [ "cash"; "check"; "creditcard" ]));
      Tree.Elem (Tree.leaf "description" (words rng zipf (4 + Rng.int rng 8)));
      Tree.Elem (Tree.leaf "shipping" (Rng.pick_list rng [ "internationally"; "regionally" ]));
    ]

let person rng zipf i =
  let first = Rng.pick rng Vocab.first_names and last = Rng.pick rng Vocab.last_names in
  Tree.elem ~attrs:[ ("id", Printf.sprintf "person%d" i) ] "person"
    [
      Tree.Elem (Tree.leaf "name" (first ^ " " ^ last));
      Tree.Elem (Tree.leaf "emailaddress" (Printf.sprintf "%s.%s@example.net" first last));
      Tree.Elem (Tree.leaf "phone" (Printf.sprintf "%d %d" (100 + Rng.int rng 900) (1000 + Rng.int rng 9000)));
      Tree.Elem
        (Tree.elem "address"
           [
             Tree.Elem (Tree.leaf "street" (Printf.sprintf "%d %s street" (1 + Rng.int rng 99) (Rng.pick rng Vocab.last_names)));
             Tree.Elem (Tree.leaf "city" (Rng.pick rng Vocab.team_cities));
             Tree.Elem (Tree.leaf "country" (Rng.pick rng regions));
           ]);
      Tree.Elem
        (Tree.elem "profile"
           (List.init (1 + Rng.int rng 3) (fun _ ->
                Tree.Elem (Tree.leaf "interest" (words rng zipf 1)))));
    ]

let bidder rng =
  Tree.elem "bidder"
    [
      Tree.Elem (Tree.leaf "date" (Printf.sprintf "%02d/%02d/1999" (1 + Rng.int rng 12) (1 + Rng.int rng 28)));
      Tree.Elem (Tree.leaf "increase" (string_of_int (1 + Rng.int rng 50)));
    ]

let open_auction rng config i =
  Tree.elem ~attrs:[ ("id", Printf.sprintf "auction%d" i) ] "open_auction"
    (Tree.Elem (Tree.leaf "initial" (string_of_int (5 + Rng.int rng 200)))
     :: List.init (Rng.int rng 4) (fun _ -> Tree.Elem (bidder rng))
    @ [
        Tree.Elem (Tree.leaf "current" (string_of_int (10 + Rng.int rng 500)));
        Tree.Elem (Tree.leaf "itemref" (Printf.sprintf "item%d" (Rng.int rng (max 1 config.items))));
        Tree.Elem (Tree.leaf "seller" (Printf.sprintf "person%d" (Rng.int rng (max 1 config.people))));
      ])

let closed_auction rng config i =
  ignore i;
  Tree.elem "closed_auction"
    [
      Tree.Elem (Tree.leaf "seller" (Printf.sprintf "person%d" (Rng.int rng (max 1 config.people))));
      Tree.Elem (Tree.leaf "buyer" (Printf.sprintf "person%d" (Rng.int rng (max 1 config.people))));
      Tree.Elem (Tree.leaf "itemref" (Printf.sprintf "item%d" (Rng.int rng (max 1 config.items))));
      Tree.Elem (Tree.leaf "price" (string_of_int (10 + Rng.int rng 900)));
      Tree.Elem (Tree.leaf "date" (Printf.sprintf "%02d/%02d/1999" (1 + Rng.int rng 12) (1 + Rng.int rng 28)));
      Tree.Elem (Tree.leaf "quantity" (string_of_int (1 + Rng.int rng 3)));
    ]

let generate ?(config = default_config) () =
  let rng = Rng.create config.seed in
  let zipf = Zipf.create ~n:(Array.length Vocab.title_words) ~s:1.0 in
  let region_items = Array.make (Array.length regions) [] in
  for i = config.items - 1 downto 0 do
    let r = Rng.int rng (Array.length regions) in
    region_items.(r) <- Tree.Elem (item rng zipf i) :: region_items.(r)
  done;
  Tree.elem "site"
    [
      Tree.Elem
        (Tree.elem "regions"
           (Array.to_list
              (Array.mapi (fun r name -> Tree.Elem (Tree.elem name region_items.(r))) regions)));
      Tree.Elem
        (Tree.elem "categories"
           (List.init config.categories (fun i ->
                Tree.Elem
                  (Tree.elem ~attrs:[ ("id", Printf.sprintf "category%d" i) ] "category"
                     [
                       Tree.Elem (Tree.leaf "name" (words rng zipf 1));
                       Tree.Elem (Tree.leaf "description" (words rng zipf 5));
                     ]))));
      Tree.Elem
        (Tree.elem "people" (List.init config.people (fun i -> Tree.Elem (person rng zipf i))));
      Tree.Elem
        (Tree.elem "open_auctions"
           (List.init config.open_auctions (fun i -> Tree.Elem (open_auction rng config i))));
      Tree.Elem
        (Tree.elem "closed_auctions"
           (List.init config.closed_auctions (fun i -> Tree.Elem (closed_auction rng config i))));
    ]

let doc ?config () = Doc.of_tree (generate ?config ())
