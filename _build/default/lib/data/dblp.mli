(** Synthetic DBLP-like corpus generator (the substitute for the paper's
    420 MB DBLP snapshot).

    The generated document has the properties the experiments rely on:
    a root with very large fanout (one publication per child, so document
    partitions are publications), Zipf-skewed title vocabulary (so keyword
    inverted lists differ in length by orders of magnitude, the premise of
    the short-list-eager algorithm), several node types
    ([article]/[inproceedings] with [author], [title], [year],
    [booktitle]/[journal], [pages]) and shared author names across
    publications (so co-occurrence statistics are non-trivial). *)

type config = {
  publications : int;  (** number of children of the root *)
  seed : int;
  year_lo : int;
  year_hi : int;
  title_len_lo : int;
  title_len_hi : int;
  zipf_s : float;  (** skew of the title-word distribution *)
}

val default_config : config

(** [generate ?config ()] builds the corpus tree. Deterministic in
    [config.seed]. *)
val generate : ?config:config -> unit -> Xr_xml.Tree.t

(** [doc ?config ()] compiles the generated corpus. *)
val doc : ?config:config -> unit -> Xr_xml.Doc.t

(** [scaled ~publications ~seed] is [generate] with just the two knobs the
    benchmarks sweep. *)
val scaled : publications:int -> seed:int -> Xr_xml.Tree.t
