(** Zipfian sampling over ranked items — keyword frequencies in real text
    (and in DBLP titles in particular) are heavily skewed, and the paper's
    short-list-eager algorithm exploits exactly that skew, so workload
    realism matters here. *)

type t

(** [create ~n ~s] prepares a sampler over ranks [0..n-1] with exponent
    [s] (typically ~1.0): P(rank k) proportional to 1/(k+1)^s. *)
val create : n:int -> s:float -> t

(** [sample t rng] draws a rank. *)
val sample : t -> Rng.t -> int

(** [pick t rng arr] draws an element of [arr] (which must have length
    [n]) Zipf-weighted by position. *)
val pick : t -> Rng.t -> 'a array -> 'a
