(** Monotone cursors over inverted lists, with access accounting.

    Every refinement algorithm in the paper claims a one-time scan of the
    involved inverted lists; cursors make that claim checkable: they only
    move forward, and they count sequential advances and indexed seeks so
    tests (and the benchmark harness) can assert the scan discipline. *)

open Xr_xml

type t

(** [make list] is a cursor positioned before the first posting. *)
val make : Inverted.posting array -> t

(** [peek c] is the posting under the cursor, or [None] at end of list. *)
val peek : t -> Inverted.posting option

(** [advance c] moves one posting forward (counted as a sequential
    access). No-op at end of list. *)
val advance : t -> unit

(** [seek_geq c dewey] moves forward to the first posting whose label is
    [>= dewey] (binary search over the remaining suffix; counted as one
    random access). Never moves backward. *)
val seek_geq : t -> Dewey.t -> unit

(** [skip_to c idx] moves the cursor to absolute index [idx] if that is
    forward; counted as one random access. *)
val skip_to : t -> int -> unit

(** [at_end c] is true when the cursor is exhausted. *)
val at_end : t -> bool

(** [position c] is the current absolute index into the list. *)
val position : t -> int

(** [list_length c] is the length of the underlying list. *)
val list_length : t -> int

(** [sequential_accesses c] / [random_accesses c]: access counters. *)
val sequential_accesses : t -> int

val random_accesses : t -> int
