(** Keyword inverted lists.

    For each keyword of the document, the list of element nodes that
    contain it directly (in their tag name or own text), in document
    order, each entry carrying the node's Dewey label and node type — the
    [<DeweyID, prefixPath>] form of the paper's first index. *)

open Xr_xml

type posting = { dewey : Dewey.t; path : Path.id }

type t

(** [build doc] scans the compiled document once and builds all lists. *)
val build : Doc.t -> t

(** [of_lists lists] wraps per-keyword posting arrays (indexed by keyword
    id, document order within each); used when restoring a persisted
    index. *)
val of_lists : posting array array -> t

(** [extend t ~vocab_size additions] is a new table covering ids up to
    [vocab_size - 1], with each [(kw, postings)] of [additions] appended
    to [kw]'s list; every appended posting must sort after the existing
    tail of its list (they do when a new partition is appended at the end
    of the document). The input table is unchanged. *)
val extend : t -> vocab_size:int -> (Interner.id * posting list) list -> t

(** [list t kw] is the posting list of keyword [kw] (empty if absent). *)
val list : t -> Interner.id -> posting array

(** [list_by_name t doc k] resolves keyword [k] (normalized) first. *)
val list_by_name : t -> Doc.t -> string -> posting array

(** [length t kw] is the posting-list length of [kw]. *)
val length : t -> Interner.id -> int

(** [keyword_count t] is the number of keywords with a non-empty list. *)
val keyword_count : t -> int

(** [iter f t] applies [f kw list] to every keyword in id order. *)
val iter : (Interner.id -> posting array -> unit) -> t -> unit

(** [prefix_slice list dewey] is the contiguous sub-range [(lo, hi)]
    (half-open index interval) of postings lying in the subtree rooted at
    [dewey], found by binary search. *)
val prefix_slice : posting array -> Dewey.t -> int * int

(** [prefix_slice_from list start dewey] restricts the search to indices
    [>= start]. *)
val prefix_slice_from : posting array -> int -> Dewey.t -> int * int
