(** The index bundle: compiled document + inverted lists + statistics,
    with persistence to any {!Xr_store.Kv.t} (Section VII of the paper;
    Berkeley DB there, our B+tree here). *)

open Xr_xml

type t = {
  doc : Doc.t;
  inverted : Inverted.t;
  stats : Stats.t;
}

(** [build doc] builds all in-memory indices. *)
val build : Doc.t -> t

(** [of_string s] parses, compiles and indexes an XML document. *)
val of_string : string -> t

(** [of_file path] reads, parses, compiles and indexes an XML file. *)
val of_file : string -> t

(** [append_partition t subtree] incrementally indexes [subtree] as a new
    last child of the document root (a new partition): nodes, inverted
    lists and statistics are extended without rescanning the existing
    document. Returns the updated bundle; the input bundle must not be
    used afterwards (its statistics tables are shared and bumped in
    place). *)
val append_partition : t -> Tree.t -> t

(** [save t kv] persists the document text, every inverted list, the
    frequency table and the per-type aggregates into [kv] (and syncs). *)
val save : t -> Xr_store.Kv.t -> unit

(** [load kv] restores an index bundle saved by {!save}: the document is
    re-parsed from the stored text; inverted lists and statistics are
    decoded from the store without rescanning the document.
    @raise Failure if the store does not hold a saved index or is
    inconsistent with the stored document. *)
val load : Xr_store.Kv.t -> t
