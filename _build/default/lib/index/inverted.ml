open Xr_xml

type posting = { dewey : Dewey.t; path : Path.id }

type t = posting array array (* indexed by keyword id *)

let build (doc : Doc.t) =
  let n = Interner.size doc.keywords in
  let acc = Array.make n [] in
  (* Nodes are in document order; build lists in reverse then flip. *)
  Array.iter
    (fun (node : Doc.node) ->
      List.iter
        (fun (kw, _count) ->
          acc.(kw) <- { dewey = node.dewey; path = node.path } :: acc.(kw))
        node.keywords)
    doc.nodes;
  Array.map (fun l -> Array.of_list (List.rev l)) acc

let of_lists lists = lists

let extend t ~vocab_size additions =
  let fresh = Array.make (max vocab_size (Array.length t)) [||] in
  Array.blit t 0 fresh 0 (Array.length t);
  List.iter
    (fun (kw, postings) ->
      let old = fresh.(kw) in
      (match (postings, Array.length old) with
      | p :: _, n when n > 0 && Dewey.compare old.(n - 1).dewey p.dewey >= 0 ->
        invalid_arg "Inverted.extend: appended postings must extend document order"
      | _ -> ());
      fresh.(kw) <- Array.append old (Array.of_list postings))
    additions;
  fresh

let list t kw = if kw >= 0 && kw < Array.length t then t.(kw) else [||]

let list_by_name t doc k =
  match Doc.keyword_id doc k with Some kw -> list t kw | None -> [||]

let length t kw = Array.length (list t kw)

let keyword_count t =
  Array.fold_left (fun a l -> if Array.length l > 0 then a + 1 else a) 0 t

let iter f t = Array.iteri f t

(* First index in [start, |l|) whose posting satisfies [cmp >= 0]. *)
let lower_bound l start cmp =
  let lo = ref start and hi = ref (Array.length l) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp l.(mid) < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let prefix_slice_from l start dewey =
  (* Postings inside the subtree rooted at [dewey] form a contiguous run:
     those whose label has [dewey] as prefix. The run starts at the first
     posting >= dewey and ends before the first posting that is >= dewey
     but not prefixed by it. *)
  let lo = lower_bound l start (fun p -> Dewey.compare p.dewey dewey) in
  let hi =
    lower_bound l start (fun p ->
        if Dewey.is_prefix dewey p.dewey then -1 else Dewey.compare p.dewey dewey)
  in
  (lo, hi)

let prefix_slice l dewey = prefix_slice_from l 0 dewey
