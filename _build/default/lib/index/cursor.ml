open Xr_xml

type t = {
  data : Inverted.posting array;
  mutable pos : int;
  mutable seq : int;
  mutable rand : int;
}

let make data = { data; pos = 0; seq = 0; rand = 0 }

let at_end c = c.pos >= Array.length c.data

let peek c = if at_end c then None else Some c.data.(c.pos)

let advance c =
  if not (at_end c) then begin
    c.pos <- c.pos + 1;
    c.seq <- c.seq + 1
  end

let seek_geq c dewey =
  if not (at_end c) then begin
    let lo = ref c.pos and hi = ref (Array.length c.data) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Dewey.compare c.data.(mid).Inverted.dewey dewey < 0 then lo := mid + 1 else hi := mid
    done;
    if !lo > c.pos then begin
      c.pos <- !lo;
      c.rand <- c.rand + 1
    end
  end

let skip_to c idx =
  if idx > c.pos then begin
    c.pos <- min idx (Array.length c.data);
    c.rand <- c.rand + 1
  end

let position c = c.pos

let list_length c = Array.length c.data

let sequential_accesses c = c.seq

let random_accesses c = c.rand
