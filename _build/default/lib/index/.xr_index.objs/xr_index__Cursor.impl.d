lib/index/cursor.ml: Array Dewey Inverted Xr_xml
