lib/index/cursor.mli: Dewey Inverted Xr_xml
