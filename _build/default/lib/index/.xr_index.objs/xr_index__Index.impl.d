lib/index/index.ml: Array Doc Hashtbl Interner Inverted List Path Printer Stats Xr_store Xr_xml
