lib/index/stats.mli: Doc Interner Inverted Path Xr_xml
