lib/index/inverted.ml: Array Dewey Doc Interner List Path Xr_xml
