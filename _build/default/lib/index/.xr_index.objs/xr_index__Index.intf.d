lib/index/index.mli: Doc Inverted Stats Tree Xr_store Xr_xml
