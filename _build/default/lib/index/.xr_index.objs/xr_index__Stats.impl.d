lib/index/stats.ml: Array Dewey Doc Hashtbl Int Interner Inverted List Path Xr_xml
