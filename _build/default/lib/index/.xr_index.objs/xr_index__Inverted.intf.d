lib/index/inverted.mli: Dewey Doc Interner Path Xr_xml
