let page_size = 4096

let magic = "XRSTORE1"

let header_ints = 9 (* page count + 8 meta slots *)

type backend =
  | Memory
  | File of Unix.file_descr

type t = {
  backend : backend;
  cache : (int, bytes) Hashtbl.t;
  dirty : (int, unit) Hashtbl.t;
  mutable count : int; (* allocated data pages *)
  meta : int array;
  mutable header_dirty : bool;
  mutable closed : bool;
}

let in_memory () =
  {
    backend = Memory;
    cache = Hashtbl.create 256;
    dirty = Hashtbl.create 64;
    count = 0;
    meta = Array.make 8 0;
    header_dirty = false;
    closed = false;
  }

let write_header t =
  match t.backend with
  | Memory -> ()
  | File fd ->
    let b = Bytes.make page_size '\000' in
    Bytes.blit_string magic 0 b 0 (String.length magic);
    Bytes.set_int64_le b 8 (Int64.of_int t.count);
    for i = 0 to 7 do
      Bytes.set_int64_le b (16 + (8 * i)) (Int64.of_int t.meta.(i))
    done;
    ignore (Unix.lseek fd 0 Unix.SEEK_SET);
    let n = Unix.write fd b 0 page_size in
    if n <> page_size then failwith "Pager: short header write";
    t.header_dirty <- false

let read_page_from_file fd id =
  let b = Bytes.create page_size in
  ignore (Unix.lseek fd (id * page_size) Unix.SEEK_SET);
  let rec fill off =
    if off < page_size then begin
      let n = Unix.read fd b off (page_size - off) in
      if n = 0 then failwith "Pager: short read";
      fill (off + n)
    end
  in
  fill 0;
  b

let open_file path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  let t =
    {
      backend = File fd;
      cache = Hashtbl.create 256;
      dirty = Hashtbl.create 64;
      count = 0;
      meta = Array.make 8 0;
      header_dirty = true;
      closed = false;
    }
  in
  if size = 0 then write_header t
  else begin
    let h = read_page_from_file fd 0 in
    if Bytes.sub_string h 0 (String.length magic) <> magic then
      failwith (path ^ ": not a pager file");
    t.count <- Int64.to_int (Bytes.get_int64_le h 8);
    for i = 0 to 7 do
      t.meta.(i) <- Int64.to_int (Bytes.get_int64_le h (16 + (8 * i)))
    done;
    t.header_dirty <- false;
    ignore header_ints
  end;
  t

let check_open t = if t.closed then invalid_arg "Pager: closed"

let alloc t =
  check_open t;
  t.count <- t.count + 1;
  let id = t.count in
  Hashtbl.replace t.cache id (Bytes.make page_size '\000');
  Hashtbl.replace t.dirty id ();
  t.header_dirty <- true;
  id

let read t id =
  check_open t;
  if id < 1 || id > t.count then invalid_arg "Pager.read: unallocated page";
  match Hashtbl.find_opt t.cache id with
  | Some b -> b
  | None -> (
    match t.backend with
    | Memory -> invalid_arg "Pager.read: unallocated page"
    | File fd ->
      let b = read_page_from_file fd id in
      Hashtbl.replace t.cache id b;
      b)

let write t id page =
  check_open t;
  if id < 1 || id > t.count then invalid_arg "Pager.write: unallocated page";
  if Bytes.length page <> page_size then invalid_arg "Pager.write: wrong size";
  Hashtbl.replace t.cache id page;
  Hashtbl.replace t.dirty id ()

let page_count t = t.count

let get_meta t slot =
  if slot < 0 || slot > 7 then invalid_arg "Pager.get_meta: slot";
  t.meta.(slot)

let set_meta t slot v =
  if slot < 0 || slot > 7 then invalid_arg "Pager.set_meta: slot";
  if v < 0 then invalid_arg "Pager.set_meta: negative";
  t.meta.(slot) <- v;
  t.header_dirty <- true

let sync t =
  check_open t;
  match t.backend with
  | Memory -> Hashtbl.reset t.dirty
  | File fd ->
    Hashtbl.iter
      (fun id () ->
        match Hashtbl.find_opt t.cache id with
        | None -> ()
        | Some b ->
          ignore (Unix.lseek fd (id * page_size) Unix.SEEK_SET);
          let n = Unix.write fd b 0 page_size in
          if n <> page_size then failwith "Pager: short write")
      t.dirty;
    Hashtbl.reset t.dirty;
    if t.header_dirty then write_header t

let close t =
  if not t.closed then begin
    sync t;
    (match t.backend with Memory -> () | File fd -> Unix.close fd);
    t.closed <- true
  end
