let max_key = 512

let max_inline = 256

let header = 7 (* kind byte + 2 bytes count + 4 bytes next/leftmost *)

let capacity = Pager.page_size - header

type value_ref =
  | Inline of string
  | Big of { first : int; len : int }

type node =
  | Leaf of { mutable entries : (string * value_ref) list; mutable next : int }
  | Node of { mutable keys : string list; mutable children : int list }
      (* |children| = |keys| + 1; keys.(i) = smallest key reachable via
         children.(i+1) *)

type t = {
  pager : Pager.t;
  nodes : (int, node) Hashtbl.t; (* parsed-page cache *)
  dirty : (int, unit) Hashtbl.t;
}

(* ---- serialization ---------------------------------------------------- *)

let entry_size (k, v) =
  2 + String.length k + 1 + (match v with Inline s -> 2 + String.length s | Big _ -> 8)

let leaf_size entries = List.fold_left (fun a e -> a + entry_size e) 0 entries

let node_size keys = List.fold_left (fun a k -> a + 2 + String.length k + 4) 0 keys

let set_u16 b off v =
  Bytes.set_uint8 b off (v land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xff)

let get_u16 b off = Bytes.get_uint8 b off lor (Bytes.get_uint8 b (off + 1) lsl 8)

let set_u32 b off v =
  set_u16 b off (v land 0xffff);
  set_u16 b (off + 2) ((v lsr 16) land 0xffff)

let get_u32 b off = get_u16 b off lor (get_u16 b (off + 2) lsl 16)

let serialize node =
  let b = Bytes.make Pager.page_size '\000' in
  (match node with
  | Leaf l ->
    Bytes.set_uint8 b 0 1;
    set_u16 b 1 (List.length l.entries);
    set_u32 b 3 l.next;
    let off = ref header in
    List.iter
      (fun (k, v) ->
        set_u16 b !off (String.length k);
        Bytes.blit_string k 0 b (!off + 2) (String.length k);
        off := !off + 2 + String.length k;
        (match v with
        | Inline s ->
          Bytes.set_uint8 b !off 0;
          set_u16 b (!off + 1) (String.length s);
          Bytes.blit_string s 0 b (!off + 3) (String.length s);
          off := !off + 3 + String.length s
        | Big { first; len } ->
          Bytes.set_uint8 b !off 1;
          set_u32 b (!off + 1) first;
          set_u32 b (!off + 5) len;
          off := !off + 9))
      l.entries
  | Node n ->
    Bytes.set_uint8 b 0 2;
    set_u16 b 1 (List.length n.keys);
    (match n.children with
    | leftmost :: _ -> set_u32 b 3 leftmost
    | [] -> invalid_arg "Btree: internal node without children");
    let off = ref header in
    List.iter2
      (fun k child ->
        set_u16 b !off (String.length k);
        Bytes.blit_string k 0 b (!off + 2) (String.length k);
        set_u32 b (!off + 2 + String.length k) child;
        off := !off + 2 + String.length k + 4)
      n.keys (List.tl n.children));
  b

let deserialize b =
  match Bytes.get_uint8 b 0 with
  | 1 ->
    let count = get_u16 b 1 in
    let next = get_u32 b 3 in
    let off = ref header in
    let entries =
      List.init count (fun _ ->
          let klen = get_u16 b !off in
          let k = Bytes.sub_string b (!off + 2) klen in
          off := !off + 2 + klen;
          let v =
            match Bytes.get_uint8 b !off with
            | 0 ->
              let vlen = get_u16 b (!off + 1) in
              let s = Bytes.sub_string b (!off + 3) vlen in
              off := !off + 3 + vlen;
              Inline s
            | 1 ->
              let first = get_u32 b (!off + 1) in
              let len = get_u32 b (!off + 5) in
              off := !off + 9;
              Big { first; len }
            | _ -> failwith "Btree: corrupt leaf entry"
          in
          (k, v))
    in
    Leaf { entries; next }
  | 2 ->
    let count = get_u16 b 1 in
    let leftmost = get_u32 b 3 in
    let off = ref header in
    let pairs =
      List.init count (fun _ ->
          let klen = get_u16 b !off in
          let k = Bytes.sub_string b (!off + 2) klen in
          let child = get_u32 b (!off + 2 + klen) in
          off := !off + 2 + klen + 4;
          (k, child))
    in
    Node { keys = List.map fst pairs; children = leftmost :: List.map snd pairs }
  | _ -> failwith "Btree: corrupt page kind"

(* ---- node cache ------------------------------------------------------- *)

let load t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None ->
    let n = deserialize (Pager.read t.pager id) in
    Hashtbl.replace t.nodes id n;
    n

let touch t id = Hashtbl.replace t.dirty id ()

let alloc_node t node =
  let id = Pager.alloc t.pager in
  Hashtbl.replace t.nodes id node;
  touch t id;
  id

(* ---- meta ------------------------------------------------------------- *)

let root t = Pager.get_meta t.pager 0

let set_root t id = Pager.set_meta t.pager 0 id

let length t = Pager.get_meta t.pager 1

let set_length t n = Pager.set_meta t.pager 1 n

(* Free list of recycled overflow pages, threaded through their [next]
   field; meta slot 2 holds the head (0 = empty). *)
let free_head t = Pager.get_meta t.pager 2

let set_free_head t id = Pager.set_meta t.pager 2 id

let create pager = { pager; nodes = Hashtbl.create 256; dirty = Hashtbl.create 64 }

let open_file path = create (Pager.open_file path)

let in_memory () = create (Pager.in_memory ())

(* ---- overflow values -------------------------------------------------- *)

let overflow_capacity = Pager.page_size - 7

(* Allocate an overflow page, preferring the free list. *)
let alloc_overflow t =
  let head = free_head t in
  if head = 0 then Pager.alloc t.pager
  else begin
    let p = Pager.read t.pager head in
    set_free_head t (get_u32 p 1);
    head
  end

(* Return a whole overflow chain to the free list. *)
let free_chain t first =
  if first <> 0 then begin
    let rec last id =
      let p = Pager.read t.pager id in
      if Bytes.get_uint8 p 0 <> 3 then failwith "Btree: corrupt overflow chain";
      let next = get_u32 p 1 in
      if next = 0 then id else last next
    in
    let tail = last first in
    let p = Bytes.copy (Pager.read t.pager tail) in
    set_u32 p 1 (free_head t);
    Pager.write t.pager tail p;
    set_free_head t first
  end

let free_value t = function Inline _ -> () | Big { first; _ } -> free_chain t first

let write_big t s =
  let len = String.length s in
  let rec chunks off =
    if off >= len then []
    else begin
      let n = min overflow_capacity (len - off) in
      let id = alloc_overflow t in
      (id, off, n) :: chunks (off + n)
    end
  in
  let cs = chunks 0 in
  let rec link = function
    | [] -> ()
    | (id, off, n) :: rest ->
      let b = Bytes.make Pager.page_size '\000' in
      Bytes.set_uint8 b 0 3;
      set_u32 b 1 (match rest with (nid, _, _) :: _ -> nid | [] -> 0);
      set_u16 b 5 n;
      Bytes.blit_string s off b 7 n;
      Pager.write t.pager id b;
      link rest
  in
  link cs;
  match cs with
  | (first, _, _) :: _ -> Big { first; len }
  | [] -> Big { first = 0; len = 0 }

let read_value t = function
  | Inline s -> s
  | Big { first; len } ->
    let b = Buffer.create len in
    let rec go id =
      if id <> 0 then begin
        let p = Pager.read t.pager id in
        if Bytes.get_uint8 p 0 <> 3 then failwith "Btree: corrupt overflow chain";
        let used = get_u16 p 5 in
        Buffer.add_subbytes b p 7 used;
        go (get_u32 p 1)
      end
    in
    go first;
    if Buffer.length b <> len then failwith "Btree: overflow length mismatch";
    Buffer.contents b

let make_value t s = if String.length s <= max_inline then Inline s else write_big t s

(* ---- search ----------------------------------------------------------- *)

(* Child index for key [k]: number of separator keys <= k. *)
let child_index keys k =
  let rec go i = function
    | [] -> i
    | sep :: rest -> if String.compare sep k <= 0 then go (i + 1) rest else i
  in
  go 0 keys

let rec find_leaf t id k =
  match load t id with
  | Leaf _ -> id
  | Node n -> find_leaf t (List.nth n.children (child_index n.keys k)) k

let find t key =
  if root t = 0 then None
  else
    let leaf = find_leaf t (root t) key in
    match load t leaf with
    | Leaf l -> Option.map (read_value t) (List.assoc_opt key l.entries)
    | Node _ -> assert false

let mem t key = find t key <> None

(* ---- insert ----------------------------------------------------------- *)

let split_list l =
  let n = List.length l in
  let rec go i acc = function
    | rest when i = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (i - 1) (x :: acc) rest
  in
  go (n / 2) [] l

(* Insert into subtree [id]; returns [Some (sep, right_id)] if it split. *)
let rec insert_at t id key value =
  match load t id with
  | Leaf l ->
    let rec put = function
      | [] -> ([ (key, value) ], true, None)
      | (k, v) :: rest ->
        let c = String.compare key k in
        if c = 0 then ((key, value) :: rest, false, Some v)
        else if c < 0 then ((key, value) :: (k, v) :: rest, true, None)
        else
          let rest', fresh, old = put rest in
          ((k, v) :: rest', fresh, old)
    in
    let entries, fresh, replaced = put l.entries in
    (match replaced with Some old -> free_value t old | None -> ());
    if fresh then set_length t (length t + 1);
    l.entries <- entries;
    touch t id;
    if leaf_size entries <= capacity then None
    else begin
      let left, right = split_list entries in
      let right_id = alloc_node t (Leaf { entries = right; next = l.next }) in
      l.entries <- left;
      l.next <- right_id;
      touch t id;
      match right with
      | (sep, _) :: _ -> Some (sep, right_id)
      | [] -> assert false
    end
  | Node n -> (
    let i = child_index n.keys key in
    match insert_at t (List.nth n.children i) key value with
    | None -> None
    | Some (sep, right_id) ->
      (* insert sep at position i in keys, right_id at i+1 in children *)
      let rec ins_key j = function
        | rest when j = 0 -> sep :: rest
        | [] -> [ sep ]
        | k :: rest -> k :: ins_key (j - 1) rest
      in
      let rec ins_child j = function
        | rest when j = 0 -> right_id :: rest
        | [] -> [ right_id ]
        | c :: rest -> c :: ins_child (j - 1) rest
      in
      n.keys <- ins_key i n.keys;
      n.children <- ins_child (i + 1) n.children;
      touch t id;
      if node_size n.keys <= capacity then None
      else begin
        (* split internal node: middle key moves up *)
        let keys_left, keys_rest = split_list n.keys in
        match keys_rest with
        | [] -> assert false
        | mid :: keys_right ->
          let nleft = List.length keys_left in
          let children_left, children_right = split_list_at (nleft + 1) n.children in
          let right_id =
            alloc_node t (Node { keys = keys_right; children = children_right })
          in
          n.keys <- keys_left;
          n.children <- children_left;
          touch t id;
          Some (mid, right_id)
      end)

and split_list_at n l =
  let rec go i acc = function
    | rest when i = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (i - 1) (x :: acc) rest
  in
  go n [] l

let insert t ~key ~value =
  if String.length key = 0 || String.length key > max_key then
    invalid_arg "Btree.insert: key must be 1..512 bytes";
  let v = make_value t value in
  if root t = 0 then begin
    let id = alloc_node t (Leaf { entries = [ (key, v) ]; next = 0 }) in
    set_root t id;
    set_length t 1
  end
  else
    match insert_at t (root t) key v with
    | None -> ()
    | Some (sep, right_id) ->
      let new_root = alloc_node t (Node { keys = [ sep ]; children = [ root t; right_id ] }) in
      set_root t new_root

(* ---- delete ----------------------------------------------------------- *)

let delete t key =
  if root t = 0 then false
  else begin
    let leaf_id = find_leaf t (root t) key in
    match load t leaf_id with
    | Node _ -> assert false
    | Leaf l ->
      let existed = List.mem_assoc key l.entries in
      if existed then begin
        (match List.assoc_opt key l.entries with
        | Some v -> free_value t v
        | None -> ());
        l.entries <- List.filter (fun (k, _) -> not (String.equal k key)) l.entries;
        touch t leaf_id;
        set_length t (length t - 1)
      end;
      existed
  end

(* ---- iteration -------------------------------------------------------- *)

let iter_from t key f =
  if root t <> 0 then begin
    let leaf_id = ref (find_leaf t (root t) key) in
    let continue = ref true in
    while !continue && !leaf_id <> 0 do
      match load t !leaf_id with
      | Node _ -> assert false
      | Leaf l ->
        List.iter
          (fun (k, v) ->
            if !continue && String.compare k key >= 0 then
              if not (f k (read_value t v)) then continue := false)
          l.entries;
        leaf_id := l.next
    done
  end

let iter t f =
  iter_from t ""
    (fun k v ->
      f k v;
      true)

let fold_range t ~lo ~hi init f =
  let acc = ref init in
  iter_from t lo (fun k v ->
      if String.compare k hi >= 0 then false
      else begin
        acc := f !acc k v;
        true
      end);
  !acc

(* ---- maintenance ------------------------------------------------------ *)

let sync t =
  Hashtbl.iter (fun id () -> Pager.write t.pager id (serialize (load t id))) t.dirty;
  Hashtbl.reset t.dirty;
  Pager.sync t.pager

let close t =
  sync t;
  Pager.close t.pager

let check t =
  if root t <> 0 then begin
    let counted = ref 0 in
    (* every key in subtree [id] must lie in [lo, hi) (None = unbounded) *)
    let in_bounds lo hi k =
      (match lo with None -> true | Some l -> String.compare l k <= 0)
      && match hi with None -> true | Some h -> String.compare k h < 0
    in
    let rec walk id lo hi =
      match load t id with
      | Leaf l ->
        let rec sorted = function
          | a :: (b :: _ as rest) ->
            if String.compare a b >= 0 then failwith "Btree.check: leaf keys out of order";
            sorted rest
          | _ -> ()
        in
        sorted (List.map fst l.entries);
        List.iter
          (fun (k, _) -> if not (in_bounds lo hi k) then failwith "Btree.check: key out of bounds")
          l.entries;
        counted := !counted + List.length l.entries
      | Node n ->
        if List.length n.children <> List.length n.keys + 1 then
          failwith "Btree.check: child count mismatch";
        let rec sorted = function
          | a :: (b :: _ as rest) ->
            if String.compare a b >= 0 then failwith "Btree.check: separators out of order";
            sorted rest
          | _ -> ()
        in
        sorted n.keys;
        let bounds =
          (* child i holds keys in [sep_{i-1}, sep_i) *)
          let seps = List.map Option.some n.keys in
          let los = lo :: seps and his = seps @ [ hi ] in
          List.combine los his
        in
        List.iter2 (fun child (clo, chi) -> walk child clo chi) n.children bounds
    in
    walk (root t) None None;
    if !counted <> length t then failwith "Btree.check: length mismatch"
  end
  else if length t <> 0 then failwith "Btree.check: empty tree with nonzero length"
