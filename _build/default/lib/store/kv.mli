(** Ordered key/value store abstraction.

    Index persistence is written against this interface so that the
    backing store is pluggable: [memory ()] for tests and ephemeral runs,
    [btree ...] for the durable Berkeley-DB-like backend. *)

type t = {
  insert : key:string -> value:string -> unit;
  find : string -> string option;
  delete : string -> bool;
  iter_from : string -> (string -> string -> bool) -> unit;
  length : unit -> int;
  sync : unit -> unit;
  close : unit -> unit;
}

(** [memory ()] is a fresh in-memory store (backed by a [Map]). *)
val memory : unit -> t

(** [of_btree b] wraps a {!Btree.t}. *)
val of_btree : Btree.t -> t

(** [btree_file path] opens a file-backed store at [path]. *)
val btree_file : string -> t

(** [fold_prefix t prefix init f] folds over all bindings whose key starts
    with [prefix], ascending. *)
val fold_prefix : t -> string -> 'a -> ('a -> string -> string -> 'a) -> 'a
