(** Disk-oriented B+tree over {!Pager}: the ordered key/value store that
    stands in for Berkeley DB in the paper's index layer.

    Keys are byte strings up to 512 bytes, ordered lexicographically.
    Values up to 256 bytes are stored inline in leaf pages; larger values
    spill into overflow-page chains. Leaves are chained left-to-right, so
    range scans are sequential. Deletion removes entries without
    rebalancing (pages never merge), which preserves all invariants needed
    for correctness. Overflow pages released by deleting or replacing a
    large value go to a free list (pager meta slot 2) and are reused by
    later large values, so repeatedly rewriting big values does not grow
    the file. *)

type t

(** [create pager] opens the tree stored in [pager] (creating an empty one
    on a fresh pager). The tree uses pager meta slots 0, 1 and 2. *)
val create : Pager.t -> t

(** [open_file path] is [create (Pager.open_file path)]. *)
val open_file : string -> t

(** [in_memory ()] is [create (Pager.in_memory ())]. *)
val in_memory : unit -> t

(** [insert t ~key ~value] inserts or replaces the binding of [key].
    @raise Invalid_argument if [key] is empty or longer than 512 bytes. *)
val insert : t -> key:string -> value:string -> unit

(** [find t key] is the value bound to [key], if any. *)
val find : t -> string -> string option

(** [mem t key] is [find t key <> None]. *)
val mem : t -> string -> bool

(** [delete t key] removes the binding of [key]; returns whether a binding
    existed. *)
val delete : t -> string -> bool

(** [length t] is the number of live bindings. *)
val length : t -> int

(** [iter_from t key f] applies [f k v] to every binding with [k >= key],
    ascending, while [f] returns [true]. *)
val iter_from : t -> string -> (string -> string -> bool) -> unit

(** [iter t f] applies [f k v] to every binding, ascending. *)
val iter : t -> (string -> string -> unit) -> unit

(** [fold_range t ~lo ~hi init f] folds [f] over bindings with
    [lo <= k < hi], ascending. *)
val fold_range : t -> lo:string -> hi:string -> 'a -> ('a -> string -> string -> 'a) -> 'a

(** [sync t] flushes all cached nodes and pager state. *)
val sync : t -> unit

(** [close t] syncs and closes the underlying pager. *)
val close : t -> unit

(** [check t] verifies structural invariants (key order within and across
    pages, separator consistency, leaf-chain order); used by tests.
    @raise Failure with a description on violation. *)
val check : t -> unit
