lib/store/kv.ml: Btree Map String
