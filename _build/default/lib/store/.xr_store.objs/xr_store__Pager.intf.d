lib/store/pager.mli:
