lib/store/kv.mli: Btree
