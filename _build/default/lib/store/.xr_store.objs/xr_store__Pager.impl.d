lib/store/pager.ml: Array Bytes Hashtbl Int64 String Unix
