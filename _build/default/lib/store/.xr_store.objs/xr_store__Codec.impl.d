lib/store/codec.ml: Array Buffer Char List String Sys
