lib/store/btree.ml: Buffer Bytes Hashtbl List Option Pager String
