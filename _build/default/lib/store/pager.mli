(** Fixed-size page storage, the layer under {!Btree}.

    Two backends share one interface: an anonymous in-memory backend and a
    file backend (write-through, whole-file page cache). Page 0 is a
    header page owned by the pager itself; it persists a magic number, the
    allocation count and eight user metadata slots (the B+tree keeps its
    root pointer there). *)

type t

val page_size : int
(** 4096 bytes. *)

(** [in_memory ()] is a fresh anonymous pager. *)
val in_memory : unit -> t

(** [open_file path] opens (or creates) a pager file.
    @raise Failure if [path] exists but is not a pager file. *)
val open_file : string -> t

(** [alloc t] allocates a fresh zeroed page and returns its id (≥ 1). *)
val alloc : t -> int

(** [read t id] is the current contents of page [id] (do not mutate).
    @raise Invalid_argument on an unallocated id. *)
val read : t -> int -> bytes

(** [write t id page] replaces page [id]. [page] must be exactly
    [page_size] bytes; the pager takes ownership of it. *)
val write : t -> int -> bytes -> unit

(** [page_count t] is the number of allocated pages (header excluded). *)
val page_count : t -> int

(** [get_meta t slot] / [set_meta t slot v]: eight persistent user slots
    ([0..7]) of non-negative ints. *)
val get_meta : t -> int -> int

val set_meta : t -> int -> int -> unit

(** [sync t] flushes dirty pages and the header to disk (no-op in
    memory). *)
val sync : t -> unit

(** [close t] syncs and releases the backing file. *)
val close : t -> unit
