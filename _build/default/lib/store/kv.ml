module Smap = Map.Make (String)

type t = {
  insert : key:string -> value:string -> unit;
  find : string -> string option;
  delete : string -> bool;
  iter_from : string -> (string -> string -> bool) -> unit;
  length : unit -> int;
  sync : unit -> unit;
  close : unit -> unit;
}

let memory () =
  let m = ref Smap.empty in
  {
    insert = (fun ~key ~value -> m := Smap.add key value !m);
    find = (fun key -> Smap.find_opt key !m);
    delete =
      (fun key ->
        let existed = Smap.mem key !m in
        m := Smap.remove key !m;
        existed);
    iter_from =
      (fun key f ->
        let exception Stop in
        try
          Smap.iter
            (fun k v -> if String.compare k key >= 0 && not (f k v) then raise Stop)
            !m
        with Stop -> ());
    length = (fun () -> Smap.cardinal !m);
    sync = (fun () -> ());
    close = (fun () -> ());
  }

let of_btree b =
  {
    insert = (fun ~key ~value -> Btree.insert b ~key ~value);
    find = (fun key -> Btree.find b key);
    delete = (fun key -> Btree.delete b key);
    iter_from = (fun key f -> Btree.iter_from b key f);
    length = (fun () -> Btree.length b);
    sync = (fun () -> Btree.sync b);
    close = (fun () -> Btree.close b);
  }

let btree_file path = of_btree (Btree.open_file path)

let fold_prefix t prefix init f =
  let acc = ref init in
  t.iter_from prefix (fun k v ->
      if String.length k >= String.length prefix
         && String.equal (String.sub k 0 (String.length prefix)) prefix
      then begin
        acc := f !acc k v;
        true
      end
      else false);
  !acc
