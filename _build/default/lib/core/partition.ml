open Xr_xml
module Inverted = Xr_index.Inverted
module Slca_engine = Xr_slca.Engine

type stats = {
  partitions_visited : int;
  partitions_skipped : int;
  dp_runs : int;
  slca_runs : int;
}

let partition_roots (doc : Doc.t) =
  List.mapi (fun i _ -> [| i |]) (Tree.element_children doc.tree)

let run ?(ranking = Ranking.default_config) ?(slca = Slca_engine.Scan_eager) ~k
    (c : Refine_common.t) =
  let engine = Slca_engine.compute slca in
  let m = Array.length c.lists in
  let from = Array.make m 0 in
  let rqlist = Rq_list.create ~capacity:(2 * k) in
  let q_found = ref false in
  let q_results = ref [] in
  let visited = ref 0 and skipped = ref 0 and dp_runs = ref 0 and slca_runs = ref 0 in
  let q_keywords =
    Array.to_list (Array.sub c.ks 0 c.q_size)
  in
  let smallest_head () =
    let best = ref None in
    for i = 0 to m - 1 do
      if from.(i) < Array.length c.lists.(i) then begin
        let d = c.lists.(i).(from.(i)).Inverted.dewey in
        match !best with
        | None -> best := Some (i, d)
        | Some (_, d') -> if Dewey.compare d d' < 0 then best := Some (i, d)
      end
    done;
    !best
  in
  let try_original ranges =
    (* Does the original query match meaningfully inside this partition? *)
    if List.for_all (Refine_common.available_in c ranges) q_keywords then begin
      incr slca_runs;
      let slcas =
        Refine_common.meaningful_slcas c engine (Refine_common.sublists c ranges q_keywords)
      in
      if slcas <> [] then begin
        q_found := true;
        q_results := !q_results @ slcas
      end
    end
  in
  (* The DP depends only on which KS keywords are present in the
     partition; partitions sharing that signature share their candidate
     list, so one DP run serves them all. *)
  let dp_cache : (string, Refined_query.t list) Hashtbl.t = Hashtbl.create 16 in
  let signature ranges =
    String.init (Array.length ranges) (fun i ->
        let lo, hi = ranges.(i) in
        if hi > lo then '1' else '0')
  in
  let candidates_for ranges =
    let key = signature ranges in
    match Hashtbl.find_opt dp_cache key with
    | Some cs -> cs
    | None ->
      incr dp_runs;
      let cs =
        (* over-fetch: the beam already holds the states, and candidates
           beyond the 2K cheapest matter when the cheap ones lack
           meaningful SLCAs in this partition *)
        Optimal_rq.top_k ~config:c.dp_config ~rules:c.rules
          ~available:(Refine_common.available_in c ranges)
          ~k:(max (2 * k) c.dp_config.Optimal_rq.beam) c.query
      in
      Hashtbl.add dp_cache key cs;
      cs
  in
  (* Once the original query is known to match, the remaining partitions
     only contribute more of its SLCAs; one plain engine pass over the
     unread suffix of the query's lists finishes the job without the
     per-partition bookkeeping (cursors still only move forward). A
     root-spanning SLCA cannot be fabricated from suffixes: only the
     document root sits above partitions and it is never meaningful. *)
  let finish_original () =
    let suffixes =
      List.init c.q_size (fun i ->
          let list = c.lists.(i) in
          Array.sub list from.(i) (Array.length list - from.(i)))
    in
    incr slca_runs;
    q_results := !q_results @ Refine_common.meaningful_slcas c engine suffixes
  in
  let rec scan () =
    match smallest_head () with
    | None -> ()
    | Some _ when !q_found -> finish_original ()
    | Some (i, d) ->
      if Dewey.depth d = 0 then begin
        (* a posting on the document root belongs to no partition *)
        from.(i) <- from.(i) + 1;
        scan ()
      end
      else begin
        let proot = [| d.(0) |] in
        (* A keyword is present in this partition iff its cursor head lies
           under [proot] (cursors never lag behind the current partition),
           so presence costs one comparison; only present lists need the
           binary search for their slice end. *)
        let ranges =
          Array.mapi
            (fun j list ->
              let start = from.(j) in
              if
                start < Array.length list
                && Dewey.is_prefix proot list.(start).Inverted.dewey
              then Inverted.prefix_slice_from list start proot
              else (start, start))
            c.lists
        in
        Array.iteri (fun j (_, hi) -> if hi > from.(j) then from.(j) <- hi) ranges;
        incr visited;
        (* the cost-0 candidate (the query itself) comes first: if it
           matches meaningfully here, no refinement work is needed at all *)
        if List.for_all (Refine_common.available_in c ranges) q_keywords then
          try_original ranges;
        if not !q_found then begin
          let candidates = candidates_for ranges in
          let any_slca = ref false in
          List.iter
            (fun rq ->
              if Refined_query.is_original rq then try_original ranges
              else if not !q_found then begin
                (* Definition 3.4 gate: a candidate enters the list only
                   once a meaningful SLCA of it is witnessed; candidates
                   already validated need no further work here (their
                   complete result sets are materialized once, at the
                   end). *)
                let interesting =
                  (not (Rq_list.mem rqlist rq))
                  && Rq_list.would_admit rqlist rq.Refined_query.dissimilarity
                in
                if interesting then begin
                  incr slca_runs;
                  any_slca := true;
                  let slcas =
                    Refine_common.meaningful_slcas c engine
                      (Refine_common.sublists c ranges rq.Refined_query.keywords)
                  in
                  if slcas <> [] then ignore (Rq_list.insert rqlist rq)
                end
              end)
            candidates;
          if not !any_slca then incr skipped
        end;
        scan ()
      end
  in
  scan ();
  let outcome =
    if !q_found then Result.Original !q_results
    else begin
      let pool = Rq_list.to_list rqlist in
      if pool = [] then Result.No_result
      else begin
        let scored = Ranking.rank ~config:ranking c.index.Xr_index.Index.stats ~original:c.query pool in
        let top = List.filteri (fun i _ -> i < k) scored in
        (* Materialize the complete result set of each final Top-K refined
           query with one pass over its full lists (any node other than
           the root lives in exactly one partition, so this equals the
           union of the per-partition SLCAs, with the meaningless root
           filtered out). *)
        Result.Refined
          (List.map
             (fun (s : Ranking.scored) ->
               let slcas =
                 Refine_common.meaningful_slcas c engine
                   (Refine_common.full_lists c s.rq.Refined_query.keywords)
               in
               { Result.rq = s.rq; score = Some s; slcas })
             top)
      end
    end
  in
  ( outcome,
    {
      partitions_visited = !visited;
      partitions_skipped = !skipped;
      dp_runs = !dp_runs;
      slca_runs = !slca_runs;
    } )
