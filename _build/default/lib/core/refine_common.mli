(** Shared setup for the three refinement algorithms: normalizes the
    query, restricts the rule set to it, materializes [KS = Q + new
    keywords] with their inverted lists, and infers the search-for context
    once. *)

open Xr_xml

type t = {
  index : Xr_index.Index.t;
  query : string list;  (** normalized original query, order preserved *)
  rules : Ruleset.t;  (** rules relevant to the query, RHS in document *)
  ks : string array;  (** KS: query keywords first, then new keywords *)
  lists : Xr_index.Inverted.posting array array;  (** per KS position *)
  q_size : int;  (** first [q_size] entries of [ks] are the query *)
  meaningful : Xr_slca.Meaningful.t;
  dp_config : Optimal_rq.config;
}

val make :
  ?dp_config:Optimal_rq.config ->
  ?search_for:Xr_slca.Search_for.config ->
  Xr_index.Index.t ->
  Ruleset.t ->
  string list ->
  t

(** [slices t dewey ~from] computes, for every KS keyword, the index range
    of its postings inside the subtree rooted at [dewey], starting the
    binary search at the per-list positions [from] (pass all zeros for the
    whole list). *)
val slices : t -> Dewey.t -> from:int array -> (int * int) array

(** [available_in t ranges] is the membership test for the keyword set [T]
    = KS entries whose range in [ranges] is non-empty. *)
val available_in : t -> (int * int) array -> string -> bool

(** [sublists t ranges keywords] extracts the posting sub-arrays of
    [keywords] (which must be KS members) for an SLCA engine call. *)
val sublists :
  t -> (int * int) array -> string list -> Xr_index.Inverted.posting array list

(** [full_lists t keywords] is the whole-document posting lists of
    [keywords]. *)
val full_lists : t -> string list -> Xr_index.Inverted.posting array list

(** [meaningful_slcas t engine lists] runs an SLCA engine and keeps the
    meaningful results. *)
val meaningful_slcas :
  t ->
  (Xr_index.Inverted.posting array list -> Dewey.t list) ->
  Xr_index.Inverted.posting array list ->
  Dewey.t list
