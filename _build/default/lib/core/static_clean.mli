(** Static query cleaning — the baseline the paper contrasts with
    (reference [10], Pu & Yu's "Keyword query cleaning"): rewrite the
    query against the {e global} vocabulary before searching, with no
    knowledge of which keywords actually co-occur anywhere.

    The cleaned query looks plausible (every keyword exists in the
    corpus), but — exactly as the paper criticizes — nothing guarantees it
    has a (meaningful) matching result, because the keywords may never
    appear together. The benchmark harness uses this to quantify how often
    static cleaning strands the user, versus the integrated refinement. *)

(** [clean ?k ?dp index query] is the Top-[k] (default 3) rewrites by
    dissimilarity, using the same mined rule set as the engine but with
    global-vocabulary availability. No result computation, no guarantee. *)
val clean :
  ?k:int ->
  ?dp:Optimal_rq.config ->
  ?thesaurus:Xr_text.Thesaurus.t ->
  Xr_index.Index.t ->
  string list ->
  Refined_query.t list

(** [stranded index rq] is true iff the cleaned query has no meaningful
    SLCA over the document — the failure mode the paper's integrated
    approach rules out by construction. *)
val stranded : Xr_index.Index.t -> Refined_query.t -> bool
