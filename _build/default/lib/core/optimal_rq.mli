(** [getOptimalRQ] (Section V): the bottom-up dynamic program that, given
    the original query [S] and an available keyword set [T], finds the
    refined queries over [T] with minimum dissimilarity.

    Cell [C.(i)] holds the best ways to rewrite the prefix [S[1..i]];
    options per cell (Formula 11): keep [k_i] when it is available, delete
    it at [deletion_cost], or apply a rule whose LHS matches the window
    ending at [i] and whose RHS is available. The k-best generalization
    keeps up to [beam] states per cell (deduplicated by produced keyword
    set), which yields [getTopOptimalRQ(Q, T, 2K)] for free — the
    candidate lists Algorithms 2 and 3 consume. *)

type config = {
  deletion_cost : int;  (** default 2, strictly above merge/split/acronym *)
  beam : int;  (** states kept per DP cell; >= the k requested *)
}

val default_config : config

(** [top_k ?config ~rules ~available ~k query] is up to [k] distinct
    refined queries over [available], cheapest first. The original query
    itself appears (dissimilarity 0) iff all its keywords are available.
    Refined queries with an empty keyword set are discarded.
    [available] decides membership in [T]; [rules] should already be
    restricted to the query (see {!Ruleset.relevant}). *)
val top_k :
  ?config:config ->
  rules:Ruleset.t ->
  available:(string -> bool) ->
  k:int ->
  string list ->
  Refined_query.t list

(** [optimal ?config ~rules ~available query] is the single cheapest
    refined query, if any. *)
val optimal :
  ?config:config ->
  rules:Ruleset.t ->
  available:(string -> bool) ->
  string list ->
  Refined_query.t option
