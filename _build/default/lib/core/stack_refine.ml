open Xr_xml
module Inverted = Xr_index.Inverted
module Meaningful = Xr_slca.Meaningful

type stats = {
  pops : int;
  dp_runs : int;
}

type entry = {
  witness : bool array; (* over KS *)
  mutable q_slca_below : bool; (* an SLCA of the original query was reported below *)
}

let run ?(ranking = Ranking.default_config) (c : Refine_common.t) =
  let m = Array.length c.lists in
  let pops = ref 0 and dp_runs = ref 0 in
  let q_found = ref false in
  let q_results = ref [] in
  let min_ds = ref max_int in
  let best_rq : Refined_query.t option ref = ref None in
  let best_results = ref [] in
  let pos = Array.make m 0 in
  let stack = ref [ { witness = Array.make m false; q_slca_below = false } ] in
  let path = ref [||] in
  let covers_q w =
    let rec go i = i >= c.q_size || (w.(i) && go (i + 1)) in
    c.q_size > 0 && go 0
  in
  let witness_nonempty w = Array.exists Fun.id w in
  let handle_pop (e : entry) node parent =
    incr pops;
    (* Original-query SLCA check (lines 10-12 of Algorithm 1). *)
    let is_q_slca = covers_q e.witness && not e.q_slca_below in
    if is_q_slca then begin
      if Meaningful.is_meaningful_dewey c.meaningful node then begin
        q_found := true;
        q_results := node :: !q_results
      end;
      parent.q_slca_below <- true
    end;
    (* Refinement exploration (lines 13-19). *)
    if (not !q_found) && (not is_q_slca) && witness_nonempty e.witness then begin
      let available k =
        let rec find i =
          if i >= m then false
          else if String.equal c.ks.(i) k then e.witness.(i)
          else find (i + 1)
        in
        find 0
      in
      incr dp_runs;
      match Optimal_rq.optimal ~config:c.dp_config ~rules:c.rules ~available c.query with
      | None -> ()
      | Some rq when Refined_query.is_original rq ->
        (* the query itself is fully witnessed here; handled by the
           meaningful-SLCA branch, never reported as a refinement *)
        ()
      | Some rq ->
        let ds = rq.Refined_query.dissimilarity in
        if ds < !min_ds then begin
          if Meaningful.is_meaningful_dewey c.meaningful node then begin
            min_ds := ds;
            best_rq := Some rq;
            best_results := [ node ]
          end
        end
        else if ds = !min_ds then begin
          match !best_rq with
          | Some best
            when String.equal (Refined_query.key best) (Refined_query.key rq)
                 && (not (List.exists (fun r -> Dewey.is_prefix node r) !best_results))
                 && Meaningful.is_meaningful_dewey c.meaningful node ->
            best_results := node :: !best_results
          | Some _ | None -> ()
        end
    end;
    (* Witness propagation to the parent. *)
    Array.iteri (fun i w -> if w then parent.witness.(i) <- true) e.witness;
    if e.q_slca_below then parent.q_slca_below <- true
  in
  let pop_to target_len =
    while Array.length !path > target_len do
      match !stack with
      | e :: (parent :: _ as rest) ->
        handle_pop e !path parent;
        stack := rest;
        path := Array.sub !path 0 (Array.length !path - 1)
      | _ -> assert false
    done
  in
  let smallest () =
    let best = ref None in
    for i = 0 to m - 1 do
      if pos.(i) < Array.length c.lists.(i) then begin
        let d = c.lists.(i).(pos.(i)).Inverted.dewey in
        match !best with
        | None -> best := Some (i, d)
        | Some (_, d') -> if Dewey.compare d d' < 0 then best := Some (i, d)
      end
    done;
    !best
  in
  let rec loop () =
    match smallest () with
    | None -> ()
    | Some (i, dewey) ->
      pos.(i) <- pos.(i) + 1;
      let lcp = Dewey.common_prefix_len dewey !path in
      pop_to lcp;
      for j = lcp to Array.length dewey - 1 do
        stack := { witness = Array.make m false; q_slca_below = false } :: !stack;
        path := Dewey.child !path dewey.(j)
      done;
      (match !stack with
      | top :: _ -> top.witness.(i) <- true
      | [] -> assert false);
      loop ()
  in
  loop ();
  pop_to 0;
  (* The root sentinel: the root is never a meaningful SLCA (excluded from
     the search-for candidates), so only its bookkeeping remains. *)
  let outcome =
    if !q_found then Result.Original (List.rev !q_results)
    else
      match !best_rq with
      | None -> Result.No_result
      | Some rq ->
        let score = Ranking.score ~config:ranking c.index.Xr_index.Index.stats ~original:c.query rq in
        Result.Refined
          [ { Result.rq; score = Some score; slcas = List.rev !best_results } ]
  in
  (outcome, { pops = !pops; dp_runs = !dp_runs })
