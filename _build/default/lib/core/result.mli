(** Outcomes of automatic refinement. *)

open Xr_xml

type rq_match = {
  rq : Refined_query.t;
  score : Ranking.scored option;  (** filled once the ranking model ran *)
  slcas : Dewey.t list;  (** meaningful SLCA results, document order *)
}

type t =
  | Original of Dewey.t list
      (** the query needs no refinement: its own meaningful SLCAs *)
  | Refined of rq_match list
      (** ranked refined queries, best first, each with results *)
  | No_result
      (** neither the query nor any refined candidate has a meaningful
          match *)

(** [describe doc t] renders a human-readable summary. *)
val describe : Doc.t -> t -> string
