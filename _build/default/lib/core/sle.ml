open Xr_xml
module Inverted = Xr_index.Inverted
module Slca_engine = Xr_slca.Engine

type stats = {
  keywords_processed : int;
  partitions_probed : int;
  dp_runs : int;
  stopped_early : bool;
}

(* Processing order (Section VI-C discussion): prefer keywords that appear
   in the RHS of a relevant rule or in no rule's LHS (they need no
   refinement themselves), then ascending list length. *)
let keyword_order (c : Refine_common.t) =
  let rules = Ruleset.to_list c.rules in
  let in_rhs k = List.exists (fun (r : Rule.t) -> List.mem k r.rhs) rules in
  let in_lhs k = List.exists (fun (r : Rule.t) -> List.mem k r.lhs) rules in
  let score i =
    let k = c.ks.(i) in
    let preferred = in_rhs k || not (in_lhs k) in
    ((if preferred then 0 else 1), Array.length c.lists.(i), i)
  in
  let idx = List.init (Array.length c.ks) Fun.id in
  let nonempty = List.filter (fun i -> Array.length c.lists.(i) > 0) idx in
  List.sort (fun a b -> compare (score a) (score b)) nonempty

let run ?(ranking = Ranking.default_config) ?(slca = Slca_engine.Scan_eager) ~k
    (c : Refine_common.t) =
  let engine = Slca_engine.compute slca in
  let q_keywords = Array.to_list (Array.sub c.ks 0 c.q_size) in
  (* Adaptivity check (Definition 3.4): if the original query itself has a
     meaningful SLCA, no refinement happens. *)
  let q_lists = Refine_common.full_lists c q_keywords in
  let q_slcas =
    if List.exists (fun l -> Array.length l = 0) q_lists then []
    else Refine_common.meaningful_slcas c engine q_lists
  in
  if q_slcas <> [] then
    (Result.Original q_slcas, { keywords_processed = 0; partitions_probed = 0; dp_runs = 0; stopped_early = false })
  else begin
    let rqlist = Rq_list.create ~capacity:(2 * k) in
    let order = keyword_order c in
    let processed = Array.make (Array.length c.ks) false in
    let visited_partitions : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let zeros = Array.make (Array.length c.lists) 0 in
    let probed = ref 0 and dp_runs = ref 0 and consumed = ref 0 in
    let stopped = ref false in
    (* Optimistic bound: cheapest dissimilarity of any refined query built
       from the still-unprocessed keywords. *)
    let c_potential () =
      let available kw =
        let rec find i =
          if i >= Array.length c.ks then false
          else if String.equal c.ks.(i) kw then
            (not processed.(i)) && Array.length c.lists.(i) > 0
          else find (i + 1)
        in
        find 0
      in
      incr dp_runs;
      match
        Optimal_rq.optimal ~config:c.dp_config ~rules:c.rules ~available c.query
      with
      | Some rq when not (Refined_query.is_original rq) -> Some rq.Refined_query.dissimilarity
      | Some _ -> Some 0
      | None -> None
    in
    (* Partitions sharing a keyword-availability signature share their DP
       candidate list. *)
    let dp_cache : (string, Refined_query.t list) Hashtbl.t = Hashtbl.create 16 in
    let candidates_for ranges =
      let key =
        String.init (Array.length ranges) (fun i ->
            let lo, hi = ranges.(i) in
            if hi > lo then '1' else '0')
      in
      match Hashtbl.find_opt dp_cache key with
      | Some cs -> cs
      | None ->
        incr dp_runs;
        let cs =
          Optimal_rq.top_k ~config:c.dp_config ~rules:c.rules
            ~available:(Refine_common.available_in c ranges)
            ~k:(max (2 * k) c.dp_config.Optimal_rq.beam) c.query
        in
        Hashtbl.add dp_cache key cs;
        cs
    in
    let process_partition pid =
      if not (Hashtbl.mem visited_partitions pid) then begin
        Hashtbl.add visited_partitions pid ();
        incr probed;
        let proot = [| pid |] in
        let ranges = Refine_common.slices c proot ~from:zeros in
        let candidates = candidates_for ranges in
        List.iter
          (fun rq ->
            if not (Refined_query.is_original rq) then begin
              let interesting =
                (not (Rq_list.mem rqlist rq))
                && Rq_list.would_admit rqlist rq.Refined_query.dissimilarity
              in
              if interesting then begin
                (* Definition 3.4: admit only with a meaningful SLCA in
                   this partition. *)
                let slcas =
                  Refine_common.meaningful_slcas c engine
                    (Refine_common.sublists c ranges rq.Refined_query.keywords)
                in
                if slcas <> [] then ignore (Rq_list.insert rqlist rq)
              end
            end)
          candidates
      end
    in
    let rec loop = function
      | [] -> ()
      | i :: rest ->
        let stop =
          Rq_list.max_dissimilarity rqlist <> None
          &&
          match (c_potential (), Rq_list.max_dissimilarity rqlist) with
          | None, _ -> true
          | Some p, Some m -> p > m
          | Some _, None -> false
        in
        if stop then stopped := true
        else begin
          incr consumed;
          Array.iter
            (fun (p : Inverted.posting) ->
              if Dewey.depth p.dewey > 0 then process_partition p.dewey.(0))
            c.lists.(i);
          processed.(i) <- true;
          loop rest
        end
    in
    loop order;
    let pool = Rq_list.to_list rqlist in
    let outcome =
      if pool = [] then Result.No_result
      else begin
        let scored =
          Ranking.rank ~config:ranking c.index.Xr_index.Index.stats ~original:c.query pool
        in
        let top = List.filteri (fun i _ -> i < k) scored in
        (* Step 2: full-document SLCA computation for the final Top-K. *)
        Result.Refined
          (List.map
             (fun (s : Ranking.scored) ->
               let slcas =
                 Refine_common.meaningful_slcas c engine
                   (Refine_common.full_lists c s.rq.Refined_query.keywords)
               in
               { Result.rq = s.rq; score = Some s; slcas })
             top)
      end
    in
    ( outcome,
      {
        keywords_processed = !consumed;
        partitions_probed = !probed;
        dp_runs = !dp_runs;
        stopped_early = !stopped;
      } )
  end
