let trim = String.trim

let split_words s =
  String.split_on_char ' ' s |> List.map trim |> List.filter (fun w -> w <> "")

let op_of_string = function
  | "deletion" | "delete" -> Some Rule.Deletion
  | "merging" | "merge" -> Some Rule.Merging
  | "split" -> Some Rule.Split
  | "substitution" | "subst" -> Some Rule.Substitution
  | _ -> None

let infer_op lhs rhs =
  match (lhs, rhs) with
  | _, [] -> Rule.Deletion
  | _ :: _ :: _, [ _ ] -> Rule.Merging
  | [ _ ], _ :: _ :: _ -> Rule.Split
  | _ -> Rule.Substitution

let default_ds op lhs rhs =
  match op with
  | Rule.Deletion -> 2
  | Rule.Merging -> max 1 (List.length lhs - 1)
  | Rule.Split -> max 1 (List.length rhs - 1)
  | Rule.Substitution -> (
    match (lhs, rhs) with
    | [ a ], [ b ] -> max 1 (Xr_text.Edit_distance.distance a b)
    | _ -> 1)

let parse_line line =
  let line = match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = trim line in
  if line = "" then Ok None
  else begin
    let arrow_at =
      let n = String.length line in
      let rec find i =
        if i + 1 >= n then None
        else if line.[i] = '-' && line.[i + 1] = '>' then Some i
        else find (i + 1)
      in
      find 0
    in
    match arrow_at with
    | Some i -> (
      let lhs_str = String.sub line 0 i in
      let rest = String.sub line (i + 2) (String.length line - i - 2) in
      let parts = String.split_on_char ':' rest |> List.map trim in
      let rhs_str, op_str, ds_str =
        match parts with
        | [ r ] -> (r, None, None)
        | [ r; o ] -> (r, Some o, None)
        | [ r; o; d ] -> (r, Some o, Some d)
        | _ -> ("", None, None)
      in
      let lhs = split_words lhs_str and rhs = split_words rhs_str in
      if lhs = [] then Error "empty left-hand side"
      else begin
        let op_result =
          match op_str with
          | None | Some "" -> Ok (infer_op lhs rhs)
          | Some o -> (
            match op_of_string (String.lowercase_ascii o) with
            | Some op -> Ok op
            | None -> Error (Printf.sprintf "unknown operation %S" o))
        in
        let ds_result =
          match ds_str with
          | None | Some "" -> Ok None
          | Some d -> (
            match int_of_string_opt d with
            | Some n when n >= 1 -> Ok (Some n)
            | Some _ | None -> Error (Printf.sprintf "bad dissimilarity %S" d))
        in
        match (op_result, ds_result) with
        | Ok op, Ok ds -> (
          let ds = match ds with Some d -> d | None -> default_ds op lhs rhs in
          if op = Rule.Deletion && rhs <> [] then Error "deletion rules take no right-hand side"
          else
            try Ok (Some (Rule.make ~op ~ds lhs rhs))
            with Invalid_argument msg -> Error msg)
        | Error e, _ | _, Error e -> Error e
      end)
    | None -> Error "expected 'LHS -> RHS [: op] [: ds]'"
  end

let parse content =
  let lines = String.split_on_char '\n' content in
  let rec go acc n = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line line with
      | Ok None -> go acc (n + 1) rest
      | Ok (Some r) -> go (r :: acc) (n + 1) rest
      | Error msg -> Error (Printf.sprintf "line %d: %s" n msg))
  in
  go [] 1 lines

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  match parse content with
  | Ok rules -> rules
  | Error msg -> failwith (path ^ ": " ^ msg)

let to_line (r : Rule.t) =
  Printf.sprintf "%s -> %s : %s : %d" (String.concat " " r.lhs) (String.concat " " r.rhs)
    (Rule.op_name r.op) r.ds

let save path rules =
  let oc = open_out path in
  output_string oc "# XRefine rule file: LHS -> RHS [: operation] [: dissimilarity]\n";
  List.iter
    (fun r ->
      output_string oc (to_line r);
      output_char oc '\n')
    rules;
  close_out oc
