(** Query specialization — the paper's stated future work ("how to refine
    a query which has too many matching results").

    Where refinement repairs a query with {e no} meaningful result,
    specialization narrows a query with an overwhelming number of them:
    it proposes Top-K queries [Q + k'] where the added keyword [k'] is
    drawn from the actual result subtrees (so every suggestion still has
    meaningful matches, the refinement counterpart of Lemma 2(3)) and
    scored by the same statistics machinery — association-rule confidence
    with the original keywords (Formula 7) and how close the keyword's
    selectivity lands to a target result-set reduction. *)

open Xr_xml

type config = {
  max_results : int;
      (** a query with more meaningful SLCAs than this is "too broad";
          default 50 *)
  k : int;  (** suggestions to return; default 5 *)
  target : float;
      (** ideal fraction of the original results a suggestion keeps;
          default 0.2 *)
  sample : int;
      (** cap on result subtrees inspected for candidates; default 200 *)
  slca : Xr_slca.Engine.algorithm;
  search_for : Xr_slca.Search_for.config;
}

val default_config : config

type suggestion = {
  keywords : string list;  (** the specialized query, sorted *)
  added : string;  (** the keyword that was added *)
  score : float;
  slcas : Dewey.t list;  (** the specialized query's meaningful SLCAs *)
}

(** [too_broad ?config index query] is true iff the query has more
    meaningful SLCAs than [config.max_results]. *)
val too_broad : ?config:config -> Xr_index.Index.t -> string list -> bool

(** [suggest ?config index query] proposes up to [config.k] specialized
    queries, best first. Empty if the query has no meaningful result (use
    refinement instead) or no candidate keyword narrows it. *)
val suggest : ?config:config -> Xr_index.Index.t -> string list -> suggestion list
