module Index = Xr_index.Index

let clean ?(k = 3) ?dp ?thesaurus (index : Index.t) query =
  let thesaurus =
    match thesaurus with Some t -> t | None -> Xr_text.Thesaurus.default ()
  in
  let rules = Ruleset.mine ~thesaurus index.Index.doc query in
  let rules = Ruleset.relevant rules (List.map Xr_xml.Token.normalize query) in
  let available kw = Xr_xml.Doc.keyword_id index.Index.doc kw <> None in
  Optimal_rq.top_k ?config:dp ~rules ~available ~k query
  |> List.filter (fun rq -> not (Refined_query.is_original rq))

let stranded index (rq : Refined_query.t) = Engine.search index rq.Refined_query.keywords = []
