open Xr_xml
module Index = Xr_index.Index
module Inverted = Xr_index.Inverted
module Meaningful = Xr_slca.Meaningful

type t = {
  index : Index.t;
  query : string list;
  rules : Ruleset.t;
  ks : string array;
  lists : Inverted.posting array array;
  q_size : int;
  meaningful : Meaningful.t;
  dp_config : Optimal_rq.config;
}

let make ?(dp_config = Optimal_rq.default_config) ?search_for (index : Index.t) rules query =
  let query =
    List.filter (fun k -> String.length k > 0) (List.map Token.normalize query)
  in
  (* distinct query keywords, order of first occurrence *)
  let q_distinct =
    List.fold_left (fun acc k -> if List.mem k acc then acc else k :: acc) [] query
    |> List.rev
  in
  let doc = index.Index.doc in
  let in_doc k = Doc.keyword_id doc k <> None in
  let rules =
    Ruleset.of_rules
      (List.filter
         (fun (r : Rule.t) -> List.for_all in_doc r.rhs)
         (Ruleset.to_list (Ruleset.relevant rules query)))
  in
  let new_kws = Ruleset.new_keywords rules query in
  let ks = Array.of_list (q_distinct @ new_kws) in
  let lists =
    Array.map
      (fun k ->
        match Doc.keyword_id doc k with
        | Some kw -> Inverted.list index.Index.inverted kw
        | None -> [||])
      ks
  in
  let q_ids = List.filter_map (fun k -> Doc.keyword_id doc k) q_distinct in
  (* If every original keyword is out of vocabulary, the search-for
     inference has no statistics to work with; fall back to the keywords
     the relevant rules can generate (the refined queries will be built
     from exactly those). *)
  let q_ids =
    if q_ids <> [] then q_ids else List.filter_map (fun k -> Doc.keyword_id doc k) new_kws
  in
  let meaningful = Meaningful.make ?config:search_for index.Index.stats q_ids in
  { index; query; rules; ks; lists; q_size = List.length q_distinct; meaningful; dp_config }

let slices t dewey ~from =
  Array.mapi (fun i list -> Inverted.prefix_slice_from list from.(i) dewey) t.lists

let available_in t ranges k =
  let rec find i =
    if i >= Array.length t.ks then false
    else if String.equal t.ks.(i) k then
      let lo, hi = ranges.(i) in
      hi > lo
    else find (i + 1)
  in
  find 0

let index_of t k =
  let rec find i =
    if i >= Array.length t.ks then None
    else if String.equal t.ks.(i) k then Some i
    else find (i + 1)
  in
  find 0

let sublists t ranges keywords =
  List.map
    (fun k ->
      match index_of t k with
      | Some i ->
        let lo, hi = ranges.(i) in
        Array.sub t.lists.(i) lo (hi - lo)
      | None -> [||])
    keywords

let full_lists t keywords =
  List.map (fun k -> match index_of t k with Some i -> t.lists.(i) | None -> [||]) keywords

let meaningful_slcas t engine lists = Meaningful.filter t.meaningful (engine lists)
