(** Refinement rules (Definition 3.5): [S1 ->op S2] with a dissimilarity
    score modelling how far the rewrite strays from the original query.

    The four operations of Section III-B. Term deletion is usually applied
    implicitly with a per-term cost (strictly greater than the other
    operations' scores, per the paper's principle), but can also be
    expressed as an explicit rule with [rhs = []]. *)

type op =
  | Deletion
  | Merging  (** ["on"; "line"] -> ["online"] *)
  | Split  (** ["online"] -> ["on"; "line"] *)
  | Substitution  (** spelling / synonym / acronym / stemming *)

type t = {
  lhs : string list;  (** matched keywords (normalized, non-empty) *)
  rhs : string list;  (** replacement keywords (normalized) *)
  op : op;
  ds : int;  (** dissimilarity score, >= 1 *)
}

(** [make ~op ~ds lhs rhs] normalizes both sides and validates the rule.
    @raise Invalid_argument on an empty LHS, a non-positive score, or an
    empty keyword. *)
val make : op:op -> ds:int -> string list -> string list -> t

(** Convenience constructors with the paper's default scores: one space
    edit for merge/split, edit distance for spelling, 1 for
    acronym/stemming, thesaurus score for synonyms. *)

val merging : string list -> string -> t

val split : string -> string list -> t

val spelling : string -> string -> t

val synonym : ?ds:int -> string -> string -> t

val acronym_expand : string -> string list -> t

val acronym_contract : string list -> string -> t

val stemming : string -> string -> t

val deletion : string -> ds:int -> t

val op_name : op -> string

val to_string : t -> string

val equal : t -> t -> bool

val compare : t -> t -> int
