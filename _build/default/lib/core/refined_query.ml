type edit =
  | Kept of string
  | Deleted of string
  | Applied of Rule.t

type t = {
  keywords : string list;
  dissimilarity : int;
  edits : edit list;
}

let key t = String.concat " " t.keywords

let is_original t = t.dissimilarity = 0

let delta t =
  List.concat_map
    (function
      | Kept _ -> []
      | Deleted k -> [ k ]
      | Applied (r : Rule.t) -> r.rhs)
    t.edits
  |> List.sort_uniq String.compare

let deleted t =
  List.concat_map (function Deleted k -> [ k ] | Kept _ | Applied _ -> []) t.edits
  |> List.sort_uniq String.compare

let generated t =
  List.concat_map (function Applied (r : Rule.t) -> r.rhs | Kept _ | Deleted _ -> []) t.edits
  |> List.sort_uniq String.compare

let operations t =
  List.filter_map
    (function
      | Kept _ -> None
      | Deleted k -> Some (Printf.sprintf "delete \"%s\"" k)
      | Applied r -> Some (Rule.to_string r))
    t.edits

let to_string t =
  Printf.sprintf "{%s} (dSim=%d)" (String.concat ", " t.keywords) t.dissimilarity

let compare a b =
  match Int.compare a.dissimilarity b.dissimilarity with
  | 0 -> String.compare (key a) (key b)
  | c -> c
