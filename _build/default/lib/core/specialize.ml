open Xr_xml
module Index = Xr_index.Index
module Stats = Xr_index.Stats
module Inverted = Xr_index.Inverted
module Slca_engine = Xr_slca.Engine
module Meaningful = Xr_slca.Meaningful

type config = {
  max_results : int;
  k : int;
  target : float;
  sample : int;
  slca : Slca_engine.algorithm;
  search_for : Xr_slca.Search_for.config;
}

let default_config =
  {
    max_results = 50;
    k = 5;
    target = 0.2;
    sample = 200;
    slca = Slca_engine.Scan_eager;
    search_for = Xr_slca.Search_for.default_config;
  }

type suggestion = {
  keywords : string list;
  added : string;
  score : float;
  slcas : Dewey.t list;
}

let normalize query =
  List.filter (fun k -> String.length k > 0) (List.map Token.normalize query)
  |> List.sort_uniq String.compare

let meaningful_results config (index : Index.t) keywords =
  let doc = index.Index.doc in
  let ids = List.filter_map (Doc.keyword_id doc) keywords in
  if List.length ids < List.length keywords then ([], None)
  else begin
    let ctx = Meaningful.make ~config:config.search_for index.Index.stats ids in
    let lists = List.map (fun kw -> Inverted.list index.Index.inverted kw) ids in
    (Meaningful.filter ctx (Slca_engine.compute config.slca lists), Some ctx)
  end

let too_broad ?(config = default_config) index query =
  let results, _ = meaningful_results config index (normalize query) in
  List.length results > config.max_results

(* Gaussian preference for keywords whose selectivity is near the target
   reduction: a keyword present in almost every result narrows nothing; a
   near-unique one overshoots. *)
let balance config selectivity =
  let sigma = 0.18 in
  let d = selectivity -. config.target in
  exp (-.(d *. d) /. (2. *. sigma *. sigma))

let suggest ?(config = default_config) (index : Index.t) query =
  let doc = index.Index.doc in
  let query = normalize query in
  let results, ctx = meaningful_results config index query in
  match (results, ctx) with
  | [], _ | _, None -> []
  | _, Some ctx ->
    let total = List.length results in
    let sampled = List.filteri (fun i _ -> i < config.sample) results in
    let nsampled = List.length sampled in
    let q_ids = List.filter_map (Doc.keyword_id doc) query in
    (* how many sampled results contain each candidate keyword *)
    let counts : (Interner.id, int) Hashtbl.t = Hashtbl.create 256 in
    List.iter
      (fun r ->
        let lo, hi = Doc.subtree_node_range doc r in
        let seen = Hashtbl.create 32 in
        for i = lo to hi - 1 do
          List.iter
            (fun (kw, _) ->
              if (not (Hashtbl.mem seen kw)) && not (List.mem kw q_ids) then begin
                Hashtbl.add seen kw ();
                Hashtbl.replace counts kw (1 + try Hashtbl.find counts kw with Not_found -> 0)
              end)
            doc.Doc.nodes.(i).Doc.keywords
        done)
      sampled;
    (* association-rule confidence of Q's keywords implying the candidate,
       over the search-for candidate types (Formula 7 reused) *)
    let dependence kw =
      List.fold_left
        (fun acc (path, conf) ->
          let per_q =
            List.fold_left
              (fun a q ->
                let fq = Stats.df index.Index.stats ~path ~kw:q in
                if fq = 0 then a
                else
                  a
                  +. float_of_int (Stats.cooccur index.Index.stats ~path q kw)
                     /. float_of_int fq)
              0. q_ids
          in
          acc +. (conf *. per_q /. float_of_int (max 1 (List.length q_ids))))
        0. (Meaningful.candidates ctx)
    in
    let scored =
      Hashtbl.fold
        (fun kw count acc ->
          if count >= 1 && count < nsampled then begin
            let selectivity = float_of_int count /. float_of_int nsampled in
            let score = balance config selectivity *. (0.5 +. dependence kw) in
            (kw, score) :: acc
          end
          else acc)
        counts []
      |> List.sort (fun (k1, s1) (k2, s2) ->
             match Float.compare s2 s1 with 0 -> Int.compare k1 k2 | c -> c)
    in
    (* verify the best candidates actually narrow the query *)
    let rec build acc = function
      | [] -> List.rev acc
      | _ when List.length acc >= config.k -> List.rev acc
      | (kw, score) :: rest ->
        let added = Doc.keyword_name doc kw in
        let keywords = List.sort_uniq String.compare (added :: query) in
        let slcas, _ = meaningful_results config index keywords in
        let n = List.length slcas in
        if n > 0 && n < total then build ({ keywords; added; score; slcas } :: acc) rest
        else build acc rest
    in
    build [] (List.filteri (fun i _ -> i < 4 * config.k) scored)
