(** The query ranking model of Section IV.

    A refined query is scored by two complementary parts:
    - {b similarity} (Formulas 2–6): how well [RQ] preserves the original
      search intention — term frequency of [RQ]'s keywords within the
      search-for subtrees (Guideline 1), discriminative power of the
      keywords touched by the refinement (Guideline 2), confidence
      weighting over multiple search-for candidates (Guideline 3), and a
      decay in the morphological/semantic dissimilarity (Guideline 4);
    - {b dependence} (Formulas 7–9): how strongly [RQ]'s keywords co-occur
      within search-for subtrees (Guideline 5), via association-rule
      confidence [C(ki => k) = f_{k,ki}^T / f_{ki}^T].

    [Rank(RQ) = alpha * Sim + beta * Dep] (Formula 10). The [variant]
    switches implement the ablations RS1–RS4 of Table IX. *)


type variant = {
  use_g1 : bool;  (** term-frequency importance of RQ's keywords *)
  use_g2 : bool;  (** discriminative power of refined keywords *)
  use_g3 : bool;  (** multi-candidate confidence weighting *)
  use_g4 : bool;  (** dissimilarity decay *)
}

(** RS0: the full model. *)
val rs0 : variant

(** [ablate i] is RS[i]: the model without Guideline [i], [i] in [1,4]. *)
val ablate : int -> variant

type config = {
  alpha : float;
  beta : float;
  decay : float;  (** [p] of Formula 6; default 0.8 *)
  variant : variant;
  search_for : Xr_slca.Search_for.config;
}

val default_config : config

type scored = {
  rq : Refined_query.t;
  similarity : float;
  dependence : float;
  rank : float;
}

(** [score ?config stats ~original rq] evaluates one refined query. The
    search-for candidates are inferred from [original] (both queries share
    the search-for node, Guideline 3's premise). *)
val score :
  ?config:config -> Xr_index.Stats.t -> original:string list -> Refined_query.t -> scored

(** [explain ?config stats ~original rq] renders a human-readable
    breakdown of one candidate's score: per search-for candidate type, the
    Guideline-1 importance, Guideline-2 delta weight, dependence, and the
    decay — the engine's reasoning, for CLI display and debugging. *)
val explain :
  ?config:config -> Xr_index.Stats.t -> original:string list -> Refined_query.t -> string

(** [rank ?config stats ~original rqs] scores all candidates and sorts
    best-rank first (ties: lower dissimilarity first). *)
val rank :
  ?config:config ->
  Xr_index.Stats.t ->
  original:string list ->
  Refined_query.t list ->
  scored list
