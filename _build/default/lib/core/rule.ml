open Xr_xml

type op = Deletion | Merging | Split | Substitution

type t = {
  lhs : string list;
  rhs : string list;
  op : op;
  ds : int;
}

let make ~op ~ds lhs rhs =
  let norm side = List.map Token.normalize side in
  let lhs = norm lhs and rhs = norm rhs in
  if lhs = [] then invalid_arg "Rule.make: empty LHS";
  if ds < 1 then invalid_arg "Rule.make: dissimilarity must be >= 1";
  if List.exists (fun k -> String.length k = 0) (lhs @ rhs) then
    invalid_arg "Rule.make: empty keyword";
  { lhs; rhs; op; ds }

let merging parts whole =
  (* one space removed per boundary *)
  make ~op:Merging ~ds:(max 1 (List.length parts - 1)) parts [ whole ]

let split whole parts = make ~op:Split ~ds:(max 1 (List.length parts - 1)) [ whole ] parts

let spelling wrong right =
  let d = Xr_text.Edit_distance.distance (Token.normalize wrong) (Token.normalize right) in
  make ~op:Substitution ~ds:(max 1 d) [ wrong ] [ right ]

let synonym ?(ds = 1) a b = make ~op:Substitution ~ds [ a ] [ b ]

let acronym_expand acronym expansion = make ~op:Substitution ~ds:1 [ acronym ] expansion

let acronym_contract expansion acronym = make ~op:Substitution ~ds:1 expansion [ acronym ]

let stemming a b = make ~op:Substitution ~ds:1 [ a ] [ b ]

let deletion k ~ds = make ~op:Deletion ~ds [ k ] []

let op_name = function
  | Deletion -> "deletion"
  | Merging -> "merging"
  | Split -> "split"
  | Substitution -> "substitution"

let to_string r =
  Printf.sprintf "{%s} ->%s {%s} (ds=%d)" (String.concat "," r.lhs) (op_name r.op)
    (String.concat "," r.rhs) r.ds

let equal a b = a.lhs = b.lhs && a.rhs = b.rhs && a.op = b.op && a.ds = b.ds

let compare = Stdlib.compare
