(** Rule sets: the indexed collection of refinement rules consulted by the
    dynamic program, plus the automatic rule miner that stands in for the
    paper's manually annotated rules.

    The miner inspects the query against the document vocabulary and the
    thesaurus and emits every plausible rule: merges of adjacent query
    terms that exist in the document, splits of a query term into two
    document words, spelling corrections within edit distance 2, synonym
    and acronym substitutions, and stemming variants. *)

type t

val empty : t

val of_rules : Rule.t list -> t

val add : t -> Rule.t -> t

val to_list : t -> Rule.t list

val size : t -> int

(** [ending_with t k] is every rule whose LHS's last keyword is [k] — the
    paper's [R(k_i)] lookup for the DP recurrence. *)
val ending_with : t -> string -> Rule.t list

(** [relevant t query] keeps the rules whose LHS occurs as a contiguous
    window of [query] (after normalization) — the "pertinent rules"
    consulted by all three algorithms. *)
val relevant : t -> string list -> t

(** [new_keywords t query] is [getNewKeywords]: every keyword produced by
    the RHS of a rule relevant to [query] and not already in [query]. *)
val new_keywords : t -> string list -> string list

type mine_config = {
  max_edit_distance : int;  (** spelling-rule radius; default 2 *)
  min_word_len_for_spelling : int;
      (** don't "correct" very short words; default 4 *)
  enable_stemming : bool;
  enable_merging : bool;
  enable_split : bool;
  enable_spelling : bool;
  enable_thesaurus : bool;
}

val default_mine_config : mine_config

(** [mine ?config ?thesaurus doc query] derives rules for [query] against
    [doc]'s vocabulary. All RHS keywords of mined rules exist in [doc]. *)
val mine :
  ?config:mine_config ->
  ?thesaurus:Xr_text.Thesaurus.t ->
  Xr_xml.Doc.t ->
  string list ->
  t
