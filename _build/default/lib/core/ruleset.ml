open Xr_xml
module Thesaurus = Xr_text.Thesaurus
module Edit_distance = Xr_text.Edit_distance
module Stemmer = Xr_text.Stemmer

type t = { rules : Rule.t list }

let empty = { rules = [] }

let add t r = if List.exists (Rule.equal r) t.rules then t else { rules = r :: t.rules }

let of_rules rules = List.fold_left add empty rules

let to_list t = List.rev t.rules

let size t = List.length t.rules

let last l = List.nth l (List.length l - 1)

let ending_with t k =
  let k = Token.normalize k in
  List.filter (fun (r : Rule.t) -> String.equal (last r.lhs) k) (to_list t)

(* Is [lhs] a contiguous window of [query]? *)
let window_of query lhs =
  let n = List.length lhs in
  let arr = Array.of_list query in
  let m = Array.length arr in
  let rec at i =
    if i + n > m then false
    else if List.for_all2 String.equal lhs (Array.to_list (Array.sub arr i n)) then true
    else at (i + 1)
  in
  at 0

let relevant t query =
  let query = List.map Token.normalize query in
  { rules = List.filter (fun (r : Rule.t) -> window_of query r.lhs) t.rules }

let new_keywords t query =
  let query = List.map Token.normalize query in
  let rel = relevant t query in
  List.concat_map (fun (r : Rule.t) -> r.rhs) (to_list rel)
  |> List.filter (fun k -> not (List.mem k query))
  |> List.sort_uniq String.compare

type mine_config = {
  max_edit_distance : int;
  min_word_len_for_spelling : int;
  enable_stemming : bool;
  enable_merging : bool;
  enable_split : bool;
  enable_spelling : bool;
  enable_thesaurus : bool;
}

let default_mine_config =
  {
    max_edit_distance = 2;
    min_word_len_for_spelling = 4;
    enable_stemming = true;
    enable_merging = true;
    enable_split = true;
    enable_spelling = true;
    enable_thesaurus = true;
  }

let in_doc doc k = Doc.keyword_id doc k <> None

(* The miner probes the whole vocabulary (edit distance, stems) for every
   query; both the word array and the Porter stems are per-document
   constants, so they are cached keyed by physical document identity. *)
type vocab_cache = { words : string array; stems : string array }

let caches : (Doc.t * vocab_cache) list ref = ref []

let vocab_cache doc =
  match List.find_opt (fun (d, _) -> d == doc) !caches with
  | Some (_, c) -> c
  | None ->
    let words = Array.of_list (Doc.vocabulary doc) in
    let stems = Array.map Stemmer.stem words in
    let c = { words; stems } in
    caches := (doc, c) :: List.filteri (fun i _ -> i < 7) !caches;
    c

let mine ?(config = default_mine_config) ?thesaurus doc query =
  let query = List.filter (fun k -> k <> "") (List.map Token.normalize query) in
  let cache = vocab_cache doc in
  let rules = ref [] in
  let emit r = rules := r :: !rules in
  (* merging: adjacent pairs (and triples) that exist in the document *)
  if config.enable_merging then begin
    let rec pairs = function
      | a :: (b :: rest' as rest) ->
        if in_doc doc (a ^ b) then emit (Rule.merging [ a; b ] (a ^ b));
        (match rest' with
        | c :: _ when in_doc doc (a ^ b ^ c) -> emit (Rule.merging [ a; b; c ] (a ^ b ^ c))
        | _ -> ());
        pairs rest
      | _ -> ()
    in
    pairs query
  end;
  List.iter
    (fun k ->
      let n = String.length k in
      (* split: both halves present in the document *)
      if config.enable_split && n >= 4 then
        for i = 2 to n - 2 do
          let a = String.sub k 0 i and b = String.sub k i (n - i) in
          if in_doc doc a && in_doc doc b then emit (Rule.split k [ a; b ])
        done;
      (* spelling: vocabulary words within the edit radius *)
      if
        config.enable_spelling && n >= config.min_word_len_for_spelling
        && not (in_doc doc k)
      then
        Array.iter
          (fun w ->
            if
              String.length w >= config.min_word_len_for_spelling
              && abs (String.length w - n) <= config.max_edit_distance
              && not (String.equal w k)
            then
              match Edit_distance.within ~limit:config.max_edit_distance k w with
              | Some _ -> emit (Rule.spelling k w)
              | None -> ())
          cache.words;
      (* stemming: vocabulary words sharing the stem *)
      if config.enable_stemming then begin
        let stem_k = Stemmer.stem k in
        Array.iteri
          (fun i w ->
            if String.equal cache.stems.(i) stem_k && not (String.equal w k) then
              emit (Rule.stemming k w))
          cache.words
      end;
      (* thesaurus: synonyms and acronym expansion *)
      match thesaurus with
      | None -> ()
      | Some th when config.enable_thesaurus ->
        List.iter
          (fun (s, ds) -> if in_doc doc s then emit (Rule.synonym ~ds k s))
          (Thesaurus.synonyms th k);
        (match Thesaurus.expansion th k with
        | Some exp when List.for_all (in_doc doc) exp -> emit (Rule.acronym_expand k exp)
        | Some _ | None -> ())
      | Some _ -> ())
    query;
  (* acronym contraction over windows of the query *)
  (match thesaurus with
  | Some th when config.enable_thesaurus ->
    let arr = Array.of_list query in
    for i = 0 to Array.length arr - 1 do
      for len = 2 to min 4 (Array.length arr - i) do
        let window = Array.to_list (Array.sub arr i len) in
        match Thesaurus.acronym_of th window with
        | Some acro when in_doc doc acro -> emit (Rule.acronym_contract window acro)
        | Some _ | None -> ()
      done
    done
  | Some _ | None -> ());
  of_rules (List.rev !rules)
