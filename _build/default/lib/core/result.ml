open Xr_xml

type rq_match = {
  rq : Refined_query.t;
  score : Ranking.scored option;
  slcas : Dewey.t list;
}

type t =
  | Original of Dewey.t list
  | Refined of rq_match list
  | No_result

let describe doc = function
  | Original slcas ->
    Printf.sprintf "query matched directly: %d meaningful SLCA(s): %s" (List.length slcas)
      (String.concat ", " (List.map (Doc.label doc) slcas))
  | No_result -> "no meaningful result and no viable refinement"
  | Refined matches ->
    let line i (m : rq_match) =
      let rank = match m.score with None -> "" | Some s -> Printf.sprintf " rank=%.4f" s.rank in
      Printf.sprintf "#%d %s%s -> %d result(s): %s" (i + 1)
        (Refined_query.to_string m.rq)
        rank (List.length m.slcas)
        (String.concat ", " (List.map (Doc.label doc) m.slcas))
    in
    String.concat "\n" (List.mapi line matches)
