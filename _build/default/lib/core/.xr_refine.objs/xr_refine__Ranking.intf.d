lib/core/ranking.mli: Refined_query Xr_index Xr_slca
