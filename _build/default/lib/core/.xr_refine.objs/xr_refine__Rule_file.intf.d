lib/core/rule_file.mli: Rule
