lib/core/specialize.mli: Dewey Xr_index Xr_slca Xr_xml
