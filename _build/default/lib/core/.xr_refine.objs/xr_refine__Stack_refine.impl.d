lib/core/stack_refine.ml: Array Dewey Fun List Optimal_rq Ranking Refine_common Refined_query Result String Xr_index Xr_slca Xr_xml
