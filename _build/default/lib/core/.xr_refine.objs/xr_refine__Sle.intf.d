lib/core/sle.mli: Ranking Refine_common Result Xr_slca
