lib/core/refine_common.mli: Dewey Optimal_rq Ruleset Xr_index Xr_slca Xr_xml
