lib/core/ruleset.mli: Rule Xr_text Xr_xml
