lib/core/rule.ml: List Printf Stdlib String Token Xr_text Xr_xml
