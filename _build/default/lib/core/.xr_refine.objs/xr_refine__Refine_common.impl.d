lib/core/refine_common.ml: Array Doc List Optimal_rq Rule Ruleset String Token Xr_index Xr_slca Xr_xml
