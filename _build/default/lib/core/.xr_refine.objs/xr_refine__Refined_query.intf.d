lib/core/refined_query.mli: Rule
