lib/core/partition.ml: Array Dewey Doc Hashtbl List Optimal_rq Ranking Refine_common Refined_query Result Rq_list String Tree Xr_index Xr_slca Xr_xml
