lib/core/refined_query.ml: Int List Printf Rule String
