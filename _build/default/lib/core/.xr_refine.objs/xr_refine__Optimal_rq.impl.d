lib/core/optimal_rq.ml: Array Hashtbl Int List Refined_query Rule Ruleset String Token Xr_xml
