lib/core/optimal_rq.mli: Refined_query Ruleset
