lib/core/partition.mli: Dewey Doc Ranking Refine_common Result Xr_slca Xr_xml
