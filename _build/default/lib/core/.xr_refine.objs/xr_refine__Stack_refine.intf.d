lib/core/stack_refine.mli: Ranking Refine_common Result
