lib/core/specialize.ml: Array Dewey Doc Float Hashtbl Int Interner List String Token Xr_index Xr_slca Xr_xml
