lib/core/static_clean.ml: Engine List Optimal_rq Refined_query Ruleset Xr_index Xr_text Xr_xml
