lib/core/engine.ml: Array Dewey Doc List Optimal_rq Partition Ranking Refine_common Refined_query Result Rule Ruleset Sle Specialize Stack_refine String Token Xr_index Xr_slca Xr_text Xr_xml
