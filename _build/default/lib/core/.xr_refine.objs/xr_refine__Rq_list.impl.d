lib/core/rq_list.ml: Hashtbl Int List Map Refined_query String
