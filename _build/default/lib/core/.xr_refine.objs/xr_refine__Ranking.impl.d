lib/core/ranking.ml: Buffer Doc Float List Printf Refined_query String Token Xr_index Xr_slca Xr_xml
