lib/core/engine.mli: Optimal_rq Partition Ranking Result Rule Ruleset Sle Specialize Stack_refine Xr_index Xr_slca Xr_text Xr_xml
