lib/core/rule_file.ml: List Printf Rule String Xr_text
