lib/core/rq_list.mli: Refined_query
