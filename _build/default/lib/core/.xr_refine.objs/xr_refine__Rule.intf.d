lib/core/rule.mli:
