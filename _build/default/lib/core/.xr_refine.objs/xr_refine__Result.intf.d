lib/core/result.mli: Dewey Doc Ranking Refined_query Xr_xml
