lib/core/static_clean.mli: Optimal_rq Refined_query Xr_index Xr_text
