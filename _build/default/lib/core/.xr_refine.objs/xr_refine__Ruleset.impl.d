lib/core/ruleset.ml: Array Doc List Rule String Token Xr_text Xr_xml
