lib/core/result.ml: Dewey Doc List Printf Ranking Refined_query String Xr_xml
