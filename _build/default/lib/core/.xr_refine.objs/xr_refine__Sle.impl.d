lib/core/sle.ml: Array Dewey Fun Hashtbl List Optimal_rq Ranking Refine_common Refined_query Result Rq_list Rule Ruleset String Xr_index Xr_slca Xr_xml
