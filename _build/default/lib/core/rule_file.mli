(** Plain-text rule files, so curated refinement rules (the paper's
    annotator-produced rule sets) can be shipped next to a corpus and
    loaded from the CLI.

    One rule per line:
    {v
    # merging (dissimilarity defaults per operation)
    on line -> online
    # explicit operation and score
    mecin -> machine            : substitution : 2
    www -> world wide web       : substitution : 1
    # deletion: empty right-hand side
    reallyjunk ->               : deletion : 2
    v}
    The operation may be omitted — it is inferred from the two sides
    (many-to-one: merging; one-to-many: split; empty RHS: deletion;
    otherwise substitution) — and so may the score (each operation's
    default applies). [#] starts a comment; blank lines are skipped. *)

(** [parse content] reads a whole file's content.
    Returns [Error msg] (with a line number) on the first malformed line. *)
val parse : string -> (Rule.t list, string) result

(** [parse_line s] is [Ok None] for blank/comment lines. *)
val parse_line : string -> (Rule.t option, string) result

(** [load path] parses a file. @raise Failure on malformed content. *)
val load : string -> Rule.t list

(** [save path rules] writes rules in the format {!parse} reads. *)
val save : string -> Rule.t list -> unit

(** [to_line r] renders one rule. *)
val to_line : Rule.t -> string
